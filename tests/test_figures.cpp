// Unit tests for the figure-level analysis functions on hand-built
// populations (the integration tests cover them on simulated data; these
// pin down the exact grouping/normalization semantics).

#include <gtest/gtest.h>

#include "core/activity_metrics.hpp"
#include "core/rat_usage.hpp"
#include "core/traffic_metrics.hpp"
#include "core/vertical_analysis.hpp"

namespace wtr::core {
namespace {

const cellnet::Plmn kObserver{234, 10, 2};
const cellnet::Plmn kMvno{235, 50, 2};
const cellnet::Plmn kForeign{204, 4, 2};

struct Builder {
  ClassifiedPopulation population{
      .summaries = {},
      .labels = {},
      .classes = {},
      .classification = {},
      .labeler = RoamingLabeler{kObserver, {kMvno}},
  };

  DeviceSummary& add(cellnet::Plmn sim, ClassLabel cls,
                     std::vector<cellnet::Plmn> visited = {kObserver}) {
    DeviceSummary summary;
    summary.device = population.summaries.size() + 1;
    summary.sim_plmn = sim;
    summary.visited_plmns = std::move(visited);
    population.summaries.push_back(std::move(summary));
    population.labels.push_back(population.labeler.label(
        sim, population.summaries.back().visited_plmns));
    population.classes.push_back(cls);
    return population.summaries.back();
  }
};

TEST(PopulationView, InboundAndNativePredicates) {
  Builder b;
  b.add(kObserver, ClassLabel::kSmart);            // H:H native
  b.add(kMvno, ClassLabel::kSmart);                // V:H native
  b.add(kForeign, ClassLabel::kM2M);               // I:H inbound
  b.add(kObserver, ClassLabel::kSmart, {kForeign});  // H:A neither
  EXPECT_TRUE(b.population.is_native_or_mvno(0));
  EXPECT_TRUE(b.population.is_native_or_mvno(1));
  EXPECT_FALSE(b.population.is_native_or_mvno(2));
  EXPECT_TRUE(b.population.is_inbound(2));
  EXPECT_FALSE(b.population.is_inbound(3));
  EXPECT_FALSE(b.population.is_native_or_mvno(3));
}

TEST(ActiveDaysFigureUnit, GroupsByClassAndStatus) {
  Builder b;
  b.add(kForeign, ClassLabel::kM2M).active_days = 9;
  b.add(kForeign, ClassLabel::kSmart).active_days = 2;
  b.add(kObserver, ClassLabel::kM2M).active_days = 20;
  b.add(kObserver, ClassLabel::kSmart).active_days = 19;
  b.add(kForeign, ClassLabel::kFeat).active_days = 5;  // neither panel

  const auto figure = active_days_figure(b.population);
  ASSERT_EQ(figure.inbound_m2m.size(), 1u);
  EXPECT_DOUBLE_EQ(figure.inbound_m2m.median(), 9.0);
  ASSERT_EQ(figure.inbound_smart.size(), 1u);
  EXPECT_DOUBLE_EQ(figure.inbound_smart.median(), 2.0);
  EXPECT_DOUBLE_EQ(figure.native_m2m.median(), 20.0);
  EXPECT_DOUBLE_EQ(figure.native_smart.median(), 19.0);
}

TEST(GyrationFigureUnit, SkipsPositionlessDevices) {
  Builder b;
  auto& with_pos = b.add(kForeign, ClassLabel::kM2M);
  with_pos.has_position = true;
  with_pos.mean_daily_gyration_m = 500.0;
  b.add(kForeign, ClassLabel::kM2M);  // no position

  const auto groups = gyration_figure(b.population);
  ASSERT_TRUE(groups.contains("m2m/inbound"));
  EXPECT_EQ(groups.at("m2m/inbound").size(), 1u);
  EXPECT_DOUBLE_EQ(
      gyration_share_above(b.population, ClassLabel::kM2M, true, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(
      gyration_share_above(b.population, ClassLabel::kM2M, true, 1'000.0), 0.0);
}

TEST(TrafficFigureUnit, PerDayNormalization) {
  Builder b;
  auto& device = b.add(kForeign, ClassLabel::kM2M);
  device.active_days = 4;
  device.signaling_events = 40;
  device.calls = 8;
  device.bytes = 4'000;
  b.add(kForeign, ClassLabel::kM2MMaybe);  // excluded

  const auto figure = traffic_figure(b.population);
  ASSERT_EQ(figure.signaling_per_day.size(), 1u);
  const auto& ecdf = figure.signaling_per_day.at("m2m/inbound");
  EXPECT_DOUBLE_EQ(ecdf.median(), 10.0);
  EXPECT_DOUBLE_EQ(figure.calls_per_day.at("m2m/inbound").median(), 2.0);
  EXPECT_DOUBLE_EQ(figure.bytes_per_day.at("m2m/inbound").median(), 1'000.0);
}

TEST(RatUsageFigureUnit, MaskLabelsAndShares) {
  Builder b;
  auto& two_g = b.add(kForeign, ClassLabel::kM2M);
  two_g.radio_flags = cellnet::RatMask{0b001};
  two_g.data_rats = cellnet::RatMask{0b001};
  auto& silent = b.add(kForeign, ClassLabel::kM2M);
  silent.radio_flags = cellnet::RatMask{0b001};
  // no data, no voice → "none" in those panels
  (void)silent;

  const auto figure = rat_usage_figure(b.population);
  EXPECT_DOUBLE_EQ(class_mask_share(figure.connectivity, ClassLabel::kM2M, "2G"), 1.0);
  EXPECT_DOUBLE_EQ(class_mask_share(figure.data, ClassLabel::kM2M, "2G"), 0.5);
  EXPECT_DOUBLE_EQ(class_mask_share(figure.data, ClassLabel::kM2M, "none"), 0.5);
  EXPECT_DOUBLE_EQ(class_mask_share(figure.voice, ClassLabel::kM2M, "none"), 1.0);
}

TEST(VerticalFigureUnit, ApnDrivenGrouping) {
  Builder b;
  auto& car = b.add(kForeign, ClassLabel::kM2M);
  car.apns = {"m2m.scania.com.mnc004.mcc204.gprs"};
  car.active_days = 1;
  car.signaling_events = 50;
  auto& meter = b.add(kForeign, ClassLabel::kM2M);
  meter.apns = {"smhp.centricaplc.com.mnc004.mcc204.gprs"};
  meter.active_days = 1;
  meter.signaling_events = 5;
  auto& phone = b.add(kForeign, ClassLabel::kSmart);
  phone.active_days = 1;
  phone.signaling_events = 40;
  b.add(kObserver, ClassLabel::kM2M).apns = {"m2m.scania.com"};  // native: excluded

  const auto figure = vertical_figure(b.population);
  ASSERT_TRUE(figure.signaling_per_day.contains("connected-car"));
  ASSERT_TRUE(figure.signaling_per_day.contains("smart-meter"));
  ASSERT_TRUE(figure.signaling_per_day.contains("smartphone"));
  EXPECT_EQ(figure.signaling_per_day.at("connected-car").size(), 1u);
  EXPECT_DOUBLE_EQ(figure.signaling_per_day.at("connected-car").median(), 50.0);
  EXPECT_DOUBLE_EQ(figure.signaling_per_day.at("smart-meter").median(), 5.0);
}

TEST(VerticalFromApn, KeywordLookup) {
  EXPECT_EQ(vertical_from_apn(cellnet::Apn::parse("m2m.scania.com")),
            devices::Vertical::kConnectedCar);
  EXPECT_EQ(vertical_from_apn(cellnet::Apn::parse("smhp.rwe.com")),
            devices::Vertical::kSmartMeter);
  EXPECT_EQ(vertical_from_apn(cellnet::Apn::parse("data.trackunit.com")),
            devices::Vertical::kLogisticsTracker);
  EXPECT_FALSE(vertical_from_apn(cellnet::Apn::parse("internet")).has_value());
}

TEST(VerticalOfDevice, FirstRecognizableWins) {
  DeviceSummary summary;
  summary.apns = {"internet", "telemetry.alarmnet.com"};
  EXPECT_EQ(vertical_of_device(summary), devices::Vertical::kSecurityAlarm);
  summary.apns = {"internet"};
  EXPECT_FALSE(vertical_of_device(summary).has_value());
}

TEST(CensusHelpers, HeatmapsFromSyntheticPopulation) {
  Builder b;
  b.add(kForeign, ClassLabel::kM2M);
  b.add(kForeign, ClassLabel::kM2M);
  b.add(cellnet::Plmn{240, 1, 2}, ClassLabel::kSmart);  // SE smartphone
  b.add(kObserver, ClassLabel::kSmart);                 // native: not inbound

  const auto countries = inbound_home_countries(b.population);
  EXPECT_EQ(countries.total(), 3u);
  EXPECT_EQ(countries.count("NL"), 2u);
  EXPECT_EQ(countries.count("SE"), 1u);

  const auto by_class = inbound_home_country_by_class(b.population);
  EXPECT_DOUBLE_EQ(by_class.row_share("m2m", "NL"), 1.0);
  EXPECT_DOUBLE_EQ(by_class.row_share("smart", "SE"), 1.0);

  const auto heatmap = class_vs_label(b.population);
  EXPECT_EQ(heatmap.at("m2m", "I:H"), 2u);
  EXPECT_EQ(heatmap.at("smart", "H:H"), 1u);
  EXPECT_DOUBLE_EQ(heatmap.col_share("m2m", "I:H"), 2.0 / 3.0);
}

TEST(SilentRoamers, CountsSignalingOnlyInbound) {
  Builder b;
  auto& silent = b.add(kForeign, ClassLabel::kM2M);
  silent.signaling_events = 50;  // no bytes, no calls
  auto& chatty = b.add(kForeign, ClassLabel::kSmart);
  chatty.signaling_events = 50;
  chatty.bytes = 1'000;
  auto& native_quiet = b.add(kObserver, ClassLabel::kM2M);
  native_quiet.signaling_events = 50;  // native: out of scope
  auto& voice_only = b.add(kForeign, ClassLabel::kM2M);
  voice_only.signaling_events = 10;
  voice_only.calls = 2;  // voice counts as usage

  const auto stats = silent_roamers(b.population);
  EXPECT_EQ(stats.inbound_devices, 3u);
  EXPECT_EQ(stats.silent, 1u);
  EXPECT_DOUBLE_EQ(stats.share(), 1.0 / 3.0);
  EXPECT_EQ(stats.silent_by_class.at("m2m"), 1u);
}

TEST(SilentRoamers, EmptyPopulation) {
  Builder b;
  const auto stats = silent_roamers(b.population);
  EXPECT_EQ(stats.inbound_devices, 0u);
  EXPECT_DOUBLE_EQ(stats.share(), 0.0);
}

}  // namespace
}  // namespace wtr::core
