#include "core/mobility_metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/rng.hpp"

namespace wtr::core {
namespace {

TEST(GyrationAccumulator, EmptyIsZero) {
  GyrationAccumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_DOUBLE_EQ(acc.gyration_m(), 0.0);
}

TEST(GyrationAccumulator, SinglePointZeroGyration) {
  GyrationAccumulator acc;
  acc.add({51.5, -0.1}, 100.0);
  EXPECT_FALSE(acc.empty());
  EXPECT_DOUBLE_EQ(acc.gyration_m(), 0.0);
  EXPECT_NEAR(acc.centroid().lat, 51.5, 1e-9);
}

TEST(GyrationAccumulator, IgnoresNonPositiveWeights) {
  GyrationAccumulator acc;
  acc.add({51.5, -0.1}, 0.0);
  acc.add({51.5, -0.1}, -5.0);
  EXPECT_TRUE(acc.empty());
}

TEST(GyrationAccumulator, MatchesDirectFormula) {
  // Compare against cellnet::radius_of_gyration_m on the same points.
  stats::Rng rng{3};
  std::vector<cellnet::GeoPoint> points;
  std::vector<double> weights;
  GyrationAccumulator acc;
  const cellnet::GeoPoint base{52.0, 5.0};
  for (int i = 0; i < 50; ++i) {
    const auto p = cellnet::offset_m(base, rng.uniform(-5'000.0, 5'000.0),
                                     rng.uniform(-5'000.0, 5'000.0));
    const double w = rng.uniform(1.0, 100.0);
    points.push_back(p);
    weights.push_back(w);
    acc.add(p, w);
  }
  const double direct = cellnet::radius_of_gyration_m(points, weights);
  EXPECT_NEAR(acc.gyration_m(), direct, direct * 0.02 + 1.0);

  const auto centroid = cellnet::weighted_centroid(points, weights);
  EXPECT_NEAR(acc.centroid().lat, centroid.lat, 1e-4);
  EXPECT_NEAR(acc.centroid().lon, centroid.lon, 1e-4);
}

TEST(GyrationAccumulator, SymmetricPairHalfSeparation) {
  const cellnet::GeoPoint a{48.0, 2.0};
  const auto b = cellnet::offset_m(a, 0.0, 3'000.0);
  GyrationAccumulator acc;
  acc.add(a, 1.0);
  acc.add(b, 1.0);
  EXPECT_NEAR(acc.gyration_m(), 1'500.0, 10.0);
}

TEST(GyrationAccumulator, WeightsShiftCentroid) {
  const cellnet::GeoPoint a{48.0, 2.0};
  const auto b = cellnet::offset_m(a, 4'000.0, 0.0);
  GyrationAccumulator acc;
  acc.add(a, 3.0);
  acc.add(b, 1.0);
  // Centroid at 1/4 of the separation from a.
  EXPECT_NEAR(cellnet::haversine_m(acc.centroid(), a), 1'000.0, 15.0);
}

TEST(GyrationAccumulator, MergeMatchesCombined) {
  stats::Rng rng{9};
  const cellnet::GeoPoint base{40.4, -3.7};
  GyrationAccumulator combined;
  GyrationAccumulator left;
  GyrationAccumulator right;
  for (int i = 0; i < 60; ++i) {
    const auto p = cellnet::offset_m(base, rng.uniform(-8'000.0, 8'000.0),
                                     rng.uniform(-8'000.0, 8'000.0));
    const double w = rng.uniform(1.0, 10.0);
    combined.add(p, w);
    (i % 2 == 0 ? left : right).add(p, w);
  }
  left.merge(right);
  EXPECT_NEAR(left.total_weight(), combined.total_weight(), 1e-9);
  EXPECT_NEAR(left.gyration_m(), combined.gyration_m(), combined.gyration_m() * 0.01);
}

TEST(GyrationAccumulator, MergeWithEmpty) {
  GyrationAccumulator acc;
  acc.add({50.0, 1.0}, 10.0);
  GyrationAccumulator empty;
  acc.merge(empty);
  EXPECT_NEAR(acc.total_weight(), 10.0, 1e-12);
  empty.merge(acc);
  EXPECT_NEAR(empty.total_weight(), 10.0, 1e-12);
}

}  // namespace
}  // namespace wtr::core
