#include "cellnet/geo.hpp"

#include <gtest/gtest.h>

#include <array>

namespace wtr::cellnet {
namespace {

TEST(Geo, HaversineZeroForSamePoint) {
  const GeoPoint p{51.5, -0.1};
  EXPECT_DOUBLE_EQ(haversine_m(p, p), 0.0);
}

TEST(Geo, HaversineKnownDistance) {
  // London to Paris is roughly 344 km.
  const GeoPoint london{51.5074, -0.1278};
  const GeoPoint paris{48.8566, 2.3522};
  EXPECT_NEAR(haversine_m(london, paris), 344'000.0, 5'000.0);
}

TEST(Geo, HaversineSymmetric) {
  const GeoPoint a{40.0, -3.0};
  const GeoPoint b{-33.0, 151.0};
  EXPECT_DOUBLE_EQ(haversine_m(a, b), haversine_m(b, a));
}

TEST(Geo, OffsetInvertsApproximately) {
  const GeoPoint origin{52.0, 5.0};
  const GeoPoint moved = offset_m(origin, 3'000.0, -4'000.0);
  EXPECT_NEAR(haversine_m(origin, moved), 5'000.0, 10.0);
}

TEST(Geo, OffsetNorthChangesOnlyLatitude) {
  const GeoPoint origin{10.0, 20.0};
  const GeoPoint moved = offset_m(origin, 0.0, 10'000.0);
  EXPECT_DOUBLE_EQ(moved.lon, origin.lon);
  EXPECT_GT(moved.lat, origin.lat);
}

TEST(Geo, WeightedCentroidSimple) {
  const std::array<GeoPoint, 2> points{GeoPoint{0.0, 0.0}, GeoPoint{2.0, 2.0}};
  const std::array<double, 2> equal{1.0, 1.0};
  const auto mid = weighted_centroid(points, equal);
  EXPECT_NEAR(mid.lat, 1.0, 1e-9);
  EXPECT_NEAR(mid.lon, 1.0, 1e-9);

  const std::array<double, 2> skewed{3.0, 1.0};
  const auto near_first = weighted_centroid(points, skewed);
  EXPECT_NEAR(near_first.lat, 0.5, 1e-9);
}

TEST(Geo, CentroidIgnoresNegativeWeights) {
  const std::array<GeoPoint, 2> points{GeoPoint{0.0, 0.0}, GeoPoint{2.0, 2.0}};
  const std::array<double, 2> weights{-5.0, 1.0};
  const auto c = weighted_centroid(points, weights);
  EXPECT_NEAR(c.lat, 2.0, 1e-9);
}

TEST(Geo, GyrationZeroCases) {
  const std::array<GeoPoint, 1> single{GeoPoint{1.0, 1.0}};
  const std::array<double, 1> w{5.0};
  EXPECT_DOUBLE_EQ(radius_of_gyration_m(single, w), 0.0);

  const std::array<GeoPoint, 3> same{GeoPoint{1.0, 1.0}, GeoPoint{1.0, 1.0},
                                     GeoPoint{1.0, 1.0}};
  const std::array<double, 3> w3{1.0, 2.0, 3.0};
  EXPECT_NEAR(radius_of_gyration_m(same, w3), 0.0, 1e-6);
}

TEST(Geo, GyrationOfSymmetricPair) {
  // Two equal-weight points: gyration = half the separation.
  const GeoPoint a{52.0, 5.0};
  const GeoPoint b = offset_m(a, 2'000.0, 0.0);
  const std::array<GeoPoint, 2> points{a, b};
  const std::array<double, 2> weights{1.0, 1.0};
  EXPECT_NEAR(radius_of_gyration_m(points, weights), 1'000.0, 5.0);
}

TEST(Geo, GyrationGrowsWithSpread) {
  const GeoPoint center{45.0, 10.0};
  const std::array<double, 2> weights{1.0, 1.0};
  const std::array<GeoPoint, 2> near{center, offset_m(center, 500.0, 0.0)};
  const std::array<GeoPoint, 2> far{center, offset_m(center, 5'000.0, 0.0)};
  EXPECT_LT(radius_of_gyration_m(near, weights), radius_of_gyration_m(far, weights));
}

}  // namespace
}  // namespace wtr::cellnet
