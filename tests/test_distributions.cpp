#include "stats/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wtr::stats {
namespace {

TEST(Normal, MeanZeroVarianceOne) {
  Rng rng{1};
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) {
    const double x = sample_standard_normal(rng);
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.02);
}

TEST(Exponential, MeanIsInverseRate) {
  Rng rng{2};
  for (double rate : {0.5, 1.0, 4.0}) {
    double sum = 0.0;
    constexpr int kN = 100'000;
    for (int i = 0; i < kN; ++i) sum += sample_exponential(rng, rate);
    EXPECT_NEAR(sum / kN, 1.0 / rate, 0.05 / rate);
  }
}

TEST(Exponential, AlwaysPositive) {
  Rng rng{3};
  for (int i = 0; i < 10'000; ++i) EXPECT_GT(sample_exponential(rng, 2.0), 0.0);
}

class PoissonSweep : public ::testing::TestWithParam<double> {};

TEST_P(PoissonSweep, MeanMatches) {
  const double mean = GetParam();
  Rng rng{static_cast<std::uint64_t>(mean * 100) + 5};
  double sum = 0.0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(sample_poisson(rng, mean));
  EXPECT_NEAR(sum / kN, mean, std::max(0.02, mean * 0.03));
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonSweep,
                         ::testing::Values(0.1, 0.5, 1.0, 3.0, 10.0, 50.0, 100.0, 500.0));

TEST(Poisson, ZeroMeanGivesZero) {
  Rng rng{6};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sample_poisson(rng, 0.0), 0u);
}

TEST(LogNormal, MedianIsExpMu) {
  Rng rng{7};
  std::vector<double> samples;
  constexpr int kN = 50'000;
  samples.reserve(kN);
  for (int i = 0; i < kN; ++i) samples.push_back(sample_lognormal(rng, 2.0, 0.8));
  std::sort(samples.begin(), samples.end());
  EXPECT_NEAR(samples[kN / 2], std::exp(2.0), std::exp(2.0) * 0.05);
}

TEST(LogNormal, AlwaysPositive) {
  Rng rng{8};
  for (int i = 0; i < 10'000; ++i) EXPECT_GT(sample_lognormal(rng, 0.0, 2.0), 0.0);
}

TEST(Pareto, NeverBelowScale) {
  Rng rng{9};
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(sample_pareto(rng, 3.0, 1.5), 3.0);
}

TEST(Pareto, TailIndexRoughlyHolds) {
  // P(X > 2*xmin) = 2^-alpha for Pareto(type I).
  Rng rng{10};
  constexpr int kN = 100'000;
  const double alpha = 2.0;
  int above = 0;
  for (int i = 0; i < kN; ++i) {
    if (sample_pareto(rng, 1.0, alpha) > 2.0) ++above;
  }
  EXPECT_NEAR(static_cast<double>(above) / kN, std::pow(2.0, -alpha), 0.01);
}

TEST(Geometric, MeanMatches) {
  Rng rng{11};
  const double p = 0.25;
  double sum = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(sample_geometric(rng, p));
  EXPECT_NEAR(sum / kN, (1.0 - p) / p, 0.05);
}

TEST(Geometric, CertainSuccessIsZero) {
  Rng rng{12};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sample_geometric(rng, 1.0), 0u);
}

TEST(Zipf, PmfIsNormalizedAndMonotone) {
  ZipfSampler zipf{100, 1.2};
  double total = 0.0;
  for (std::size_t r = 0; r < zipf.size(); ++r) {
    total += zipf.pmf(r);
    if (r > 0) {
      EXPECT_LT(zipf.pmf(r), zipf.pmf(r - 1));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, TopRankDominates) {
  ZipfSampler zipf{50, 1.0};
  Rng rng{13};
  std::vector<int> counts(50, 0);
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, zipf.pmf(0), 0.01);
}

TEST(LogNormalMixture, TailWeightZeroIsPureBulk) {
  LogNormalMixture mixture{.weight_tail = 0.0,
                           .bulk_mu = 1.0,
                           .bulk_sigma = 0.1,
                           .tail_mu = 10.0,
                           .tail_sigma = 0.1};
  Rng rng{14};
  for (int i = 0; i < 5'000; ++i) {
    EXPECT_LT(mixture.sample(rng), 10.0);  // e^1 with tiny sigma << e^10
  }
}

TEST(LogNormalMixture, TailInflatesUpperQuantiles) {
  LogNormalMixture mixture{.weight_tail = 0.1,
                           .bulk_mu = 1.0,
                           .bulk_sigma = 0.3,
                           .tail_mu = 6.0,
                           .tail_sigma = 0.5};
  Rng rng{15};
  int big = 0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) {
    if (mixture.sample(rng) > 100.0) ++big;
  }
  EXPECT_NEAR(static_cast<double>(big) / kN, 0.1, 0.02);
}

TEST(Clamped, Clamps) {
  EXPECT_EQ(clamped(5.0, 0.0, 10.0), 5.0);
  EXPECT_EQ(clamped(-1.0, 0.0, 10.0), 0.0);
  EXPECT_EQ(clamped(11.0, 0.0, 10.0), 10.0);
}

}  // namespace
}  // namespace wtr::stats
