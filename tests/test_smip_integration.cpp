// End-to-end integration: SMIP scenario → catalog → smart-meter analysis
// (§7.1, Fig. 11) and the platform scenario → §3 analyses.

#include <gtest/gtest.h>

#include "core/catalog_builder.hpp"
#include "core/platform_analysis.hpp"
#include "core/smip_analysis.hpp"
#include "tracegen/m2m_platform_scenario.hpp"
#include "tracegen/smip_scenario.hpp"

namespace wtr {
namespace {

class SmipIntegration : public ::testing::Test {
 protected:
  struct State {
    std::unique_ptr<tracegen::SmipScenario> scenario;
    std::vector<core::DeviceSummary> summaries;
    core::SmipAnalysis analysis;
  };

  static State& state() {
    static State s = [] {
      tracegen::SmipScenarioConfig config;
      config.seed = 5;
      config.total_devices = 3'000;
      auto scenario = std::make_unique<tracegen::SmipScenario>(config);
      core::CatalogAccumulator acc{{scenario->observer_plmn(), {scenario->observer_plmn()}}};
      scenario->run({&acc});
      const auto catalog = acc.finalize();
      auto summaries = core::summarize(catalog);
      auto analysis = core::analyze_smip(summaries, scenario->native_meters(),
                                         scenario->roaming_meters(), config.days,
                                         scenario->tac_catalog());
      return State{std::move(scenario), std::move(summaries), std::move(analysis)};
    }();
    return s;
  }
};

TEST_F(SmipIntegration, BothGroupsObserved) {
  EXPECT_GT(state().analysis.native.devices, 1'000u);
  EXPECT_GT(state().analysis.roaming.devices, 800u);
}

TEST_F(SmipIntegration, NativeMetersLiveLong) {
  // Fig. 11-a: ~73% of native meters active the whole period; day-0 cohort
  // even more so.
  EXPECT_NEAR(state().analysis.native.fraction_full_period, 0.73, 0.12);
  EXPECT_GT(state().analysis.native.active_days_day0.median(),
            state().analysis.native.active_days.median() * 0.9);
}

TEST_F(SmipIntegration, RoamingMetersShortLived) {
  // Fig. 11-a: ~50% of roaming meters are active at most ~5 days.
  const double at_most_5 = state().analysis.roaming.active_days.fraction_at_most(5.0);
  EXPECT_GT(at_most_5, 0.3);
  EXPECT_LT(state().analysis.roaming.fraction_full_period,
            state().analysis.native.fraction_full_period);
}

TEST_F(SmipIntegration, RoamingSignalingMuchHigher) {
  // Fig. 11-b: roaming meters generate on the order of 10× the signaling.
  EXPECT_GT(state().analysis.signaling_ratio(), 3.0);
  EXPECT_LT(state().analysis.signaling_ratio(), 40.0);
}

TEST_F(SmipIntegration, FailureIncidence) {
  // §7.1: ~10% of all SMIP devices had a failed event; ~35% of roaming.
  EXPECT_LT(state().analysis.native.fraction_with_failures, 0.30);
  EXPECT_GT(state().analysis.roaming.fraction_with_failures,
            state().analysis.native.fraction_with_failures);
}

TEST_F(SmipIntegration, RatUsageSplit) {
  // Roaming meters are 2G-only; native meters use 3G (2/3 exclusively).
  // A few percent of roaming meters carry dead subscriptions and never
  // register a successful event, landing in the "none" bucket.
  EXPECT_GT(state().analysis.roaming.rat_usage.share("2G"), 0.90);
  EXPECT_DOUBLE_EQ(state().analysis.roaming.rat_usage.share("3G"), 0.0);
  EXPECT_GT(state().analysis.native.rat_usage.share("3G"), 0.45);
}

TEST_F(SmipIntegration, Provenance) {
  // §4.4: all roaming meter SIMs from one Dutch operator; modules from
  // exactly Gemalto and Telit.
  const auto& homes = state().analysis.roaming_home_operators;
  EXPECT_EQ(homes.distinct(), 1u);
  EXPECT_EQ(homes.sorted().front().first, "204-04");
  const auto& vendors = state().analysis.roaming_vendors;
  EXPECT_LE(vendors.distinct(), 2u);
  for (const auto& [vendor, _] : vendors.sorted()) {
    EXPECT_TRUE(vendor == "Gemalto" || vendor == "Telit") << vendor;
  }
}

class PlatformIntegration : public ::testing::Test {
 protected:
  static const core::PlatformStats& stats() {
    static const core::PlatformStats s = [] {
      tracegen::M2MPlatformConfig config;
      config.seed = 3;
      config.total_devices = 5'000;
      tracegen::M2MPlatformScenario scenario{config};
      core::PlatformTraceAccumulator acc{{scenario.hmno_plmns()}};
      scenario.run({&acc});
      return acc.finalize();
    }();
    return s;
  }
};

TEST_F(PlatformIntegration, HmnoOrderingMatchesPaper) {
  ASSERT_GE(stats().per_hmno.size(), 4u);
  EXPECT_EQ(stats().per_hmno[0].home_iso, "ES");
  EXPECT_EQ(stats().per_hmno[1].home_iso, "MX");
  // ES ≈ 52%, MX ≈ 42% of devices.
  EXPECT_NEAR(stats().per_hmno[0].device_share(stats().total_devices), 0.523, 0.08);
  EXPECT_NEAR(stats().per_hmno[1].device_share(stats().total_devices), 0.422, 0.08);
}

TEST_F(PlatformIntegration, EsSignalingDominates) {
  // §3.2: ES contributes ~82% of all signaling, ~92% of it while roaming.
  EXPECT_GT(stats().es_signaling_share, 0.6);
  EXPECT_GT(stats().es_roaming_signaling_share, 0.75);
}

TEST_F(PlatformIntegration, EsFootprintIsBroad) {
  const auto& es = stats().per_hmno[0];
  EXPECT_GT(es.visited_countries, 40u);   // paper: 77
  EXPECT_GT(es.visited_networks, 50u);    // paper: 127
  // MX stays home-heavy with a narrow footprint.
  const auto& mx = stats().per_hmno[1];
  EXPECT_LE(mx.visited_countries, 10u);
  EXPECT_GT(static_cast<double>(mx.devices - mx.roaming_devices) /
                static_cast<double>(mx.devices),
            0.8);  // paper: 90% at home
}

TEST_F(PlatformIntegration, FailureDeviceShare) {
  // §3.3: ~40% of the ES-connected devices only ever fail on 4G. The
  // platform-wide share is diluted by the home-heavy MX/AR fleets.
  EXPECT_NEAR(stats().es_fraction_failed_only, 0.40, 0.12);
  EXPECT_GT(stats().fraction_any_success, 0.5);
}

TEST_F(PlatformIntegration, RecordsDistributionShape) {
  // Fig. 3-left: long tail; mean well above median, 97% under 2000.
  ASSERT_FALSE(stats().records_all.empty());
  EXPECT_GT(stats().records_all.mean(), stats().records_all.median());
  EXPECT_GT(stats().records_all.fraction_at_most(2'000.0), 0.9);
  // Roaming devices are much chattier than native ones.
  EXPECT_GT(stats().records_roaming.median(), stats().records_native.median());
}

TEST_F(PlatformIntegration, VmnoDistributionShape) {
  // Fig. 3-center: most roaming devices camp on a single VMNO.
  ASSERT_FALSE(stats().vmnos_per_roaming_device.empty());
  const double single = stats().vmnos_per_roaming_device.fraction_at_most(1.0);
  EXPECT_GT(single, 0.4);
  EXPECT_LT(single, 0.95);
  EXPECT_GT(stats().vmnos_per_roaming_device.max(), 2.0);
}

TEST_F(PlatformIntegration, SwitchDistributionHasTail) {
  // Fig. 3-right: a minority of multi-VMNO devices switches a lot.
  ASSERT_FALSE(stats().switches_multi_vmno.empty());
  EXPECT_GT(stats().switches_multi_vmno.max(), 20.0);
  EXPECT_LT(stats().switches_multi_vmno.median(), 20.0);
}

TEST_F(PlatformIntegration, Footprint) {
  EXPECT_GT(stats().footprint.row_total("ES"), 0u);
  EXPECT_GT(stats().footprint.at("MX", "MX"), 0u);
  EXPECT_GT(stats().footprint.cols_by_total().size(), 30u);
}

}  // namespace
}  // namespace wtr
