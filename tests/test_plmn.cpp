#include "cellnet/plmn.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace wtr::cellnet {
namespace {

TEST(Plmn, DefaultIsInvalid) {
  EXPECT_FALSE(Plmn{}.valid());
}

TEST(Plmn, Validity) {
  EXPECT_TRUE((Plmn{214, 7, 2}.valid()));
  EXPECT_TRUE((Plmn{310, 410, 3}.valid()));
  EXPECT_FALSE((Plmn{99, 1, 2}.valid()));    // mcc too small
  EXPECT_FALSE((Plmn{214, 100, 2}.valid())); // 3-digit mnc with 2-digit width
  EXPECT_FALSE((Plmn{214, 7, 4}.valid()));   // bad width
}

TEST(Plmn, ToString) {
  EXPECT_EQ((Plmn{214, 7, 2}.to_string()), "214-07");
  EXPECT_EQ((Plmn{310, 410, 3}.to_string()), "310-410");
  EXPECT_EQ((Plmn{204, 4, 2}.to_string()), "204-04");
}

TEST(Plmn, ParseDashed) {
  const auto plmn = Plmn::parse("214-07");
  ASSERT_TRUE(plmn.has_value());
  EXPECT_EQ(plmn->mcc(), 214);
  EXPECT_EQ(plmn->mnc(), 7);
  EXPECT_EQ(plmn->mnc_digits(), 2);
}

TEST(Plmn, ParseCompact) {
  const auto two = Plmn::parse("21407");
  ASSERT_TRUE(two.has_value());
  EXPECT_EQ(two->mnc_digits(), 2);
  const auto three = Plmn::parse("310410");
  ASSERT_TRUE(three.has_value());
  EXPECT_EQ(three->mnc(), 410);
  EXPECT_EQ(three->mnc_digits(), 3);
}

TEST(Plmn, ParseRoundTrip) {
  for (const auto* text : {"214-07", "204-04", "310-410", "262-002"}) {
    const auto plmn = Plmn::parse(text);
    ASSERT_TRUE(plmn.has_value()) << text;
    EXPECT_EQ(plmn->to_string(), text);
  }
}

TEST(Plmn, ParseRejectsGarbage) {
  for (const auto* text : {"", "abc", "12-34", "1234", "214-7", "214-0700",
                           "21a07", "214--7", "099-01"}) {
    EXPECT_FALSE(Plmn::parse(text).has_value()) << text;
  }
}

TEST(Plmn, MncWidthDistinguishes) {
  const Plmn two{214, 4, 2};
  const Plmn three{214, 4, 3};
  EXPECT_NE(two, three);
  EXPECT_NE(two.key(), three.key());
}

TEST(Plmn, OrderingAndHash) {
  const Plmn a{214, 7, 2};
  const Plmn b{234, 10, 2};
  EXPECT_LT(a, b);
  std::unordered_set<Plmn> set{a, b, a};
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace wtr::cellnet
