// Attach backoff state machine: 3GPP-style attempt counter, T3411 short
// retries, T3402 long backoff after saturation, jitter bounds, escalation
// cap, and seed-stable determinism.

#include "signaling/attach_backoff.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wtr::signaling {
namespace {

AttachBackoffConfig no_jitter() {
  AttachBackoffConfig config;
  config.enabled = true;
  config.jitter_fraction = 0.0;
  return config;
}

TEST(AttachBackoff, AttemptCounterProgression) {
  AttachBackoff backoff{no_jitter()};
  stats::Rng rng{1};
  EXPECT_EQ(backoff.attempt_count(), 0);
  EXPECT_FALSE(backoff.in_long_backoff());
  for (int i = 1; i <= 4; ++i) {
    EXPECT_DOUBLE_EQ(backoff.on_failure(rng), 10.0);  // T3411
    EXPECT_EQ(backoff.attempt_count(), i);
    EXPECT_FALSE(backoff.in_long_backoff());
  }
}

TEST(AttachBackoff, FifthFailureEntersLongBackoff) {
  AttachBackoff backoff{no_jitter()};
  stats::Rng rng{1};
  for (int i = 0; i < 4; ++i) backoff.on_failure(rng);
  EXPECT_DOUBLE_EQ(backoff.on_failure(rng), 720.0);  // T3402
  EXPECT_TRUE(backoff.in_long_backoff());
  EXPECT_EQ(backoff.long_cycles(), 1);
  // Staying failed keeps the long timer (fixed per spec with multiplier 1).
  EXPECT_DOUBLE_EQ(backoff.on_failure(rng), 720.0);
  EXPECT_EQ(backoff.long_cycles(), 2);
}

TEST(AttachBackoff, SuccessResetsEverything) {
  AttachBackoff backoff{no_jitter()};
  stats::Rng rng{1};
  for (int i = 0; i < 6; ++i) backoff.on_failure(rng);
  ASSERT_TRUE(backoff.in_long_backoff());
  backoff.on_success();
  EXPECT_EQ(backoff.attempt_count(), 0);
  EXPECT_EQ(backoff.long_cycles(), 0);
  EXPECT_FALSE(backoff.in_long_backoff());
  EXPECT_DOUBLE_EQ(backoff.on_failure(rng), 10.0);  // back on T3411
}

TEST(AttachBackoff, EscalationRespectsCap) {
  auto config = no_jitter();
  config.long_backoff_multiplier = 4.0;
  config.max_backoff_s = 3000.0;
  AttachBackoff backoff{config};
  stats::Rng rng{1};
  for (int i = 0; i < 4; ++i) backoff.on_failure(rng);
  EXPECT_DOUBLE_EQ(backoff.on_failure(rng), 720.0);         // 720 * 4^0
  EXPECT_DOUBLE_EQ(backoff.on_failure(rng), 2880.0);        // 720 * 4^1
  EXPECT_DOUBLE_EQ(backoff.on_failure(rng), 3000.0);        // capped
  EXPECT_DOUBLE_EQ(backoff.on_failure(rng), 3000.0);
}

TEST(AttachBackoff, JitterStaysWithinBounds) {
  AttachBackoffConfig config;
  config.enabled = true;
  config.jitter_fraction = 0.25;
  stats::Rng rng{99};
  bool saw_off_nominal = false;
  for (int i = 0; i < 200; ++i) {
    AttachBackoff fresh{config};
    const double delay = fresh.on_failure(rng);
    EXPECT_GE(delay, 10.0 * 0.75);
    EXPECT_LT(delay, 10.0 * 1.25);
    if (delay != 10.0) saw_off_nominal = true;
  }
  EXPECT_TRUE(saw_off_nominal);
}

TEST(AttachBackoff, DelayNeverBelowOneSecond) {
  auto config = no_jitter();
  config.t3411_s = 0.001;
  AttachBackoff backoff{config};
  stats::Rng rng{1};
  EXPECT_DOUBLE_EQ(backoff.on_failure(rng), 1.0);
}

TEST(AttachBackoff, DeterministicAcrossIdenticalSeeds) {
  auto run = [](std::uint64_t seed) {
    AttachBackoffConfig config;
    config.enabled = true;
    AttachBackoff backoff{config};
    stats::Rng rng{seed};
    std::vector<double> delays;
    for (int i = 0; i < 12; ++i) {
      delays.push_back(backoff.on_failure(rng));
      if (i == 7) backoff.on_success();
    }
    return delays;
  };
  EXPECT_EQ(run(2019), run(2019));
  EXPECT_NE(run(2019), run(2020));
}

TEST(AttachBackoff, ConsumesExactlyOneDrawPerFailure) {
  stats::Rng a{7};
  stats::Rng b{7};
  AttachBackoff backoff{no_jitter()};
  backoff.on_failure(a);
  b.uniform();
  EXPECT_EQ(a.uniform(), b.uniform());
}

}  // namespace
}  // namespace wtr::signaling
