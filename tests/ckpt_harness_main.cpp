// wtr_ckpt_harness: the child process the crash-recovery tests and the
// supervised-run script drive. It runs one scenario with checkpointing
// enabled, streaming records into a crash-safe TraceFileSink, and exits with
// a small, scriptable contract:
//
//   exit 0  run reached the horizon; records.txt / metrics.txt / probe.txt /
//           MANIFEST.json (+ resilience.txt when faulted) are complete
//   exit 2  usage error
//   exit 3  run was interrupted (SIGINT/SIGTERM or --stop-hours); the final
//           checkpoint and the flushed record prefix are on disk
//   exit 4  resume failed (corrupt/mismatched snapshot) — diagnostic on
//           stderr, nothing resumed
//
// MANIFEST.json is written with timers detached and a fixed git describe so
// an interrupted+resumed run can be byte-compared against an uninterrupted
// one; the volatile recovery bookkeeping (resumed_from, checkpoints_written,
// checkpoint_wall_s) goes to RUN_META.json instead.
//
// A faulted run (--faults) injects the same deterministic schedule the
// parallel-engine tests use — a full UK outage on day 3 (hours 8..14) and a
// 35% registration storm on day 5 (hours 10..16) — with mechanistic 3GPP
// backoff enabled, and accumulates a checkpointed ResilienceReport.

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ckpt/file_sink.hpp"
#include "ckpt/shutdown.hpp"
#include "ckpt/snapshot.hpp"
#include "faults/congestion.hpp"
#include "faults/fault_schedule.hpp"
#include "faults/resilience_report.hpp"
#include "obs/heartbeat.hpp"
#include "obs/observability.hpp"
#include "obs/run_manifest.hpp"
#include "obs/trace.hpp"
#include "stats/sim_time.hpp"
#include "tracegen/m2m_platform_scenario.hpp"
#include "tracegen/mno_scenario.hpp"
#include "tracegen/smip_scenario.hpp"
#include "tracegen/storm_scenario.hpp"

namespace {

using namespace wtr;

struct Options {
  std::string scenario = "mno";  // mno | smip | platform | storm
  std::string out_dir;
  std::string ckpt_path;           // default: <out_dir>/ckpt.bin
  std::int64_t ckpt_hours = 0;     // snapshot cadence (0 = off)
  std::int64_t stop_hours = 0;     // deterministic in-process interrupt
  unsigned threads = 1;
  std::size_t devices = 600;
  std::int32_t days = 0;  // 0 = the scenario's default horizon
  std::uint64_t seed = 42;
  bool faults = false;
  bool resume = false;
  std::string trace_path;      // flight-recorder export (empty = off)
  std::string heartbeat_path;  // live progress file (empty = off)
  double heartbeat_interval_s = 1.0;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --out DIR [--scenario mno|smip|platform|storm] [--ckpt PATH]\n"
               "          [--ckpt-hours N] [--stop-hours N] [--threads K]\n"
               "          [--devices N] [--days N] [--seed N] [--faults] [--resume]\n"
               "          [--trace PATH] [--heartbeat PATH] [--heartbeat-interval S]\n",
               argv0);
  return 2;
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--faults") {
      opt.faults = true;
    } else if (arg == "--resume") {
      opt.resume = true;
    } else if (arg == "--scenario") {
      const char* v = value();
      if (!v) return false;
      opt.scenario = v;
    } else if (arg == "--out") {
      const char* v = value();
      if (!v) return false;
      opt.out_dir = v;
    } else if (arg == "--ckpt") {
      const char* v = value();
      if (!v) return false;
      opt.ckpt_path = v;
    } else if (arg == "--ckpt-hours") {
      const char* v = value();
      if (!v) return false;
      opt.ckpt_hours = std::strtoll(v, nullptr, 10);
    } else if (arg == "--stop-hours") {
      const char* v = value();
      if (!v) return false;
      opt.stop_hours = std::strtoll(v, nullptr, 10);
    } else if (arg == "--threads") {
      const char* v = value();
      if (!v) return false;
      opt.threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--devices") {
      const char* v = value();
      if (!v) return false;
      opt.devices = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--days") {
      const char* v = value();
      if (!v) return false;
      opt.days = static_cast<std::int32_t>(std::strtol(v, nullptr, 10));
      if (opt.days <= 0) return false;
    } else if (arg == "--seed") {
      const char* v = value();
      if (!v) return false;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--trace") {
      const char* v = value();
      if (!v) return false;
      opt.trace_path = v;
    } else if (arg == "--heartbeat") {
      const char* v = value();
      if (!v) return false;
      opt.heartbeat_path = v;
    } else if (arg == "--heartbeat-interval") {
      const char* v = value();
      if (!v) return false;
      opt.heartbeat_interval_s = std::strtod(v, nullptr);
    } else {
      return false;
    }
  }
  if (opt.out_dir.empty()) return false;
  if (opt.scenario != "mno" && opt.scenario != "smip" && opt.scenario != "platform" &&
      opt.scenario != "storm") {
    return false;
  }
  if (opt.ckpt_path.empty()) opt.ckpt_path = opt.out_dir + "/ckpt.bin";
  return true;
}

std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// Wall-clock-derived flight-recorder telemetry (trace.* names) is excluded
/// from metrics.txt: the dump is byte-compared between interrupted+resumed
/// and uninterrupted runs, and wall times legitimately differ across them.
bool volatile_metric(const std::string& name) {
  return name.rfind("trace.", 0) == 0;
}

std::string dump_metrics(const obs::MetricsRegistry& metrics) {
  std::string out;
  for (const auto& [name, counter] : metrics.counters()) {
    if (volatile_metric(name)) continue;
    out += name + "=" + std::to_string(counter.value()) + "\n";
  }
  for (const auto& [name, gauge] : metrics.gauges()) {
    if (volatile_metric(name)) continue;
    out += name + "=" + hex_double(gauge.value()) + "\n";
  }
  for (const auto& [name, hist] : metrics.histograms()) {
    if (volatile_metric(name)) continue;
    out += name + ": n=" + std::to_string(hist.count()) +
           " sum=" + hex_double(hist.sum()) + " buckets=";
    for (const auto b : hist.bucket_counts()) out += std::to_string(b) + ",";
    out += "\n";
  }
  return out;
}

std::string dump_probe(const obs::EngineProbe& probe) {
  std::string out;
  for (const auto& s : probe.samples()) {
    out += std::to_string(s.sim_time) + "|" + std::to_string(s.wakes) + "|" +
           std::to_string(s.queue_depth) + "|" + std::to_string(s.records) + "|" +
           std::to_string(s.attach_attempts) + "|" +
           std::to_string(s.attach_failures) + "|" +
           std::to_string(s.active_fault_episodes) + "\n";
  }
  out += "max=" + std::to_string(probe.queue_depth_max());
  out += " records=" + std::to_string(probe.records_total());
  out += " failures=" + std::to_string(probe.attach_failures());
  out += "\n";
  return out;
}

std::string dump_resilience(const faults::ResilienceSummary& summary) {
  std::string out;
  out += "procedures=" + std::to_string(summary.procedures) + "\n";
  out += "failures=" + std::to_string(summary.failures) + "\n";
  for (std::size_t code = 0; code < summary.by_code.size(); ++code) {
    out += "code," + std::to_string(code) + "=" +
           std::to_string(summary.by_code[code]) + "\n";
  }
  for (const auto& [day, n] : summary.failures_by_day) {
    out += "day," + std::to_string(day) + "=" + std::to_string(n) + "\n";
  }
  for (const auto& [op, n] : summary.failures_by_operator) {
    out += "op," + std::to_string(op) + "=" + std::to_string(n) + "\n";
  }
  for (const auto& rec : summary.recoveries) {
    out += "recovery," + std::to_string(rec.episode_index) + "," +
           std::to_string(rec.op) + "," + std::to_string(rec.outage_end) + "," +
           (rec.first_success_after ? std::to_string(*rec.first_success_after)
                                    : std::string{"none"}) +
           "\n";
  }
  return out;
}

void write_text(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    throw std::runtime_error("cannot open " + path + ": " + std::strerror(errno));
  }
  if (!body.empty() && std::fwrite(body.data(), 1, body.size(), f) != body.size()) {
    std::fclose(f);
    throw std::runtime_error("short write to " + path);
  }
  std::fclose(f);
}

/// The deterministic fault schedule the byte-identity tests use: a total UK
/// outage plus a registration storm, targeted at the world's uk_mno id. The
/// id is read from a throwaway 10-device scenario built with the same world
/// seed — identically-configured worlds build identically, so the id matches
/// the real run's world (the schedule must exist before the real scenario is
/// constructed because the engine borrows it at construction time).
void build_fault_schedule(const Options& opt, faults::FaultSchedule& schedule) {
  constexpr stats::SimTime kHour = 3600;
  topology::OperatorId uk_mno = topology::kInvalidOperator;
  if (opt.scenario == "smip") {
    tracegen::SmipScenarioConfig probe_config;
    probe_config.seed = opt.seed;
    probe_config.total_devices = 10;
    probe_config.build_coverage = false;
    tracegen::SmipScenario throwaway{probe_config};
    uk_mno = throwaway.world().well_known().uk_mno;
  } else {
    tracegen::MnoScenarioConfig probe_config;
    probe_config.seed = opt.seed;
    probe_config.total_devices = 10;
    probe_config.build_coverage = false;
    tracegen::MnoScenario throwaway{probe_config};
    uk_mno = throwaway.world().well_known().uk_mno;
  }
  schedule.add_outage(uk_mno, stats::day_start(3) + 8 * kHour,
                      stats::day_start(3) + 14 * kHour, 1.0);
  schedule.add_storm(uk_mno, stats::day_start(5) + 10 * kHour,
                     stats::day_start(5) + 16 * kHour, 0.35);
}

/// The closed-loop overload model the storm scenario runs against. Built
/// before the real scenario (the engine borrows it at construction); the
/// observer's radio-network id and the operator count come from a throwaway
/// tiny scenario with the same world seed. The per-bucket capacity scales
/// with the fleet so any --devices value actually congests.
std::unique_ptr<faults::CongestionModel> build_congestion_model(
    const Options& opt, obs::MetricsRegistry* metrics) {
  tracegen::StormScenarioConfig probe_config;
  probe_config.seed = opt.seed;
  probe_config.meters = 8;
  probe_config.trackers = 2;
  probe_config.days = 1;
  tracegen::StormScenario probe{probe_config};
  faults::CongestionConfig config;
  config.bucket_s = 60;
  config.capacities = {{probe.observer_radio(),
                        std::max(50.0, 0.16 * static_cast<double>(opt.devices))}};
  return std::make_unique<faults::CongestionModel>(config, probe.operator_count(),
                                                   nullptr, metrics);
}

std::unique_ptr<tracegen::ScenarioBase> make_scenario(
    const Options& opt, const faults::FaultSchedule* faults,
    faults::CongestionModel* congestion, obs::Observability obs) {
  tracegen::CheckpointOptions ckpt;
  ckpt.every_sim_hours = opt.ckpt_hours;
  ckpt.path = opt.ckpt_path;
  ckpt.stop_after_sim_hours = opt.stop_hours;
  tracegen::TelemetryOptions telemetry;
  telemetry.trace_path = opt.trace_path;
  telemetry.heartbeat_path = opt.heartbeat_path;
  telemetry.heartbeat_every_wall_s = opt.heartbeat_interval_s;
  if (opt.scenario == "storm") {
    tracegen::StormScenarioConfig config;
    config.seed = opt.seed;
    config.trackers = opt.devices / 5;
    config.meters = opt.devices - config.trackers;
    config.threads = opt.threads;
    if (opt.days > 0) config.days = opt.days;
    config.checkin_jitter_s = 150.0;
    config.fota_start_s = 30 * 3600;
    config.fota_failure_p = 0.35;
    config.backoff.enabled = true;
    config.congestion = congestion;
    config.faults = faults;
    config.obs = obs;
    config.ckpt = ckpt;
    config.telemetry = telemetry;
    return std::make_unique<tracegen::StormScenario>(config);
  }
  if (opt.scenario == "smip") {
    tracegen::SmipScenarioConfig config;
    config.seed = opt.seed;
    config.total_devices = opt.devices;
    config.threads = opt.threads;
    if (opt.days > 0) config.days = opt.days;
    config.faults = faults;
    config.backoff.enabled = opt.faults;
    config.obs = obs;
    config.ckpt = ckpt;
    config.telemetry = telemetry;
    return std::make_unique<tracegen::SmipScenario>(config);
  }
  if (opt.scenario == "platform") {
    tracegen::M2MPlatformConfig config;
    config.seed = opt.seed;
    config.total_devices = opt.devices;
    config.threads = opt.threads;
    if (opt.days > 0) config.days = opt.days;
    config.faults = faults;
    config.obs = obs;
    config.ckpt = ckpt;
    config.telemetry = telemetry;
    return std::make_unique<tracegen::M2MPlatformScenario>(config);
  }
  tracegen::MnoScenarioConfig config;
  config.seed = opt.seed;
  config.total_devices = opt.devices;
  config.threads = opt.threads;
  if (opt.days > 0) config.days = opt.days;
  config.build_coverage = false;
  config.faults = faults;
  config.backoff.enabled = opt.faults;
  config.obs = obs;
  config.ckpt = ckpt;
  config.telemetry = telemetry;
  return std::make_unique<tracegen::MnoScenario>(config);
}

void write_run_meta(const Options& opt, const sim::Engine& engine) {
  std::string meta = "{\n";
  meta += "  \"interrupted\": " + std::string(engine.interrupted() ? "true" : "false") +
          ",\n";
  meta += "  \"resumed\": " + std::string(engine.resumed() ? "true" : "false") + ",\n";
  meta += "  \"resumed_from\": \"" + engine.resumed_from() + "\",\n";
  meta += "  \"checkpoints_written\": " + std::to_string(engine.checkpoints_written()) +
          ",\n";
  meta += "  \"checkpoint_wall_s\": " + std::to_string(engine.checkpoint_wall_s()) + "\n";
  meta += "}\n";
  write_text(opt.out_dir + "/RUN_META.json", meta);
}

int run_harness(const Options& opt) {
  obs::RunObservation observation;

  // The engine takes over the heartbeat once run() starts; this first beat
  // exists so the supervisor sees a fresh file during the (potentially
  // long) world/fleet build instead of mistaking startup for a hang.
  if (!opt.heartbeat_path.empty()) {
    obs::HeartbeatWriter boot{opt.heartbeat_path, 0.0};
    obs::HeartbeatStatus status;
    status.phase = "boot";
    boot.write_now(status);
  }

  faults::FaultSchedule schedule;
  if (opt.faults) build_fault_schedule(opt, schedule);

  std::unique_ptr<faults::CongestionModel> congestion;
  if (opt.scenario == "storm") {
    congestion = build_congestion_model(opt, &observation.metrics());
  }

  auto scenario = make_scenario(opt, opt.faults ? &schedule : nullptr,
                                congestion.get(), observation.view());

  // Crash-safe record sink: its byte offset rides in every checkpoint, so a
  // resume truncates records.txt back to exactly the checkpointed prefix.
  ckpt::TraceFileSink sink{opt.out_dir + "/records.txt", opt.resume};
  scenario->engine().register_checkpointable("trace_sink", &sink);
  sink.set_trace(scenario->engine().flight_recorder(),
                 obs::FlightRecorder::kEngineTrack);

  std::unique_ptr<faults::ResilienceReport> report;
  if (opt.faults) {
    report = std::make_unique<faults::ResilienceReport>(scenario->world(), schedule,
                                                        &observation.metrics());
    scenario->engine().register_checkpointable("resilience", report.get());
  }

  // Registration order above must match the save-time order; resume_from
  // verifies the recorded names and restores in-place.
  if (opt.resume) scenario->resume_from(opt.ckpt_path);

  ckpt::install_shutdown_handlers();

  std::vector<sim::RecordSink*> sinks{&sink};
  if (report) sinks.push_back(report.get());
  scenario->run(sinks);

  write_run_meta(opt, scenario->engine());

  if (scenario->engine().interrupted()) {
    // The final checkpoint already flushed+fsynced the sink; make the
    // record prefix durable even when no checkpoint path was configured.
    sink.flush_and_sync();
    return 3;
  }

  sink.flush_and_sync();
  write_text(opt.out_dir + "/metrics.txt", dump_metrics(observation.metrics()));
  write_text(opt.out_dir + "/probe.txt", dump_probe(observation.probe()));
  if (report) {
    write_text(opt.out_dir + "/resilience.txt", dump_resilience(report->summary()));
  }

  // Timers deliberately detached and git describe pinned: the manifest must
  // be byte-identical between an uninterrupted run and a killed+resumed one.
  obs::RunManifest manifest{"ckpt-harness"};
  manifest.set_seed(opt.seed);
  manifest.set_scale(opt.devices);
  manifest.set_git_describe("fixed");
  manifest.attach_metrics(&observation.metrics());
  manifest.attach_probe(&observation.probe());
  manifest.add_result("records_total", observation.probe().records_total());
  manifest.add_result("wakes", scenario->engine().wakes_processed());
  write_text(opt.out_dir + "/MANIFEST.json", manifest.to_json());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return usage(argv[0]);
  try {
    return run_harness(opt);
  } catch (const wtr::ckpt::SnapshotError& e) {
    std::fprintf(stderr, "wtr_ckpt_harness: snapshot rejected: %s\n", e.what());
    return 4;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wtr_ckpt_harness: fatal: %s\n", e.what());
    return 4;
  }
}
