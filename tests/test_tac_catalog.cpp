#include "cellnet/tac_catalog.hpp"

#include <gtest/gtest.h>

#include <set>

namespace wtr::cellnet {
namespace {

class TacPoolsTest : public ::testing::Test {
 protected:
  TacPools pools_{TacPools::Config{.seed = 7}};
};

TEST_F(TacPoolsTest, CatalogPopulated) {
  EXPECT_GT(pools_.catalog().size(), 1'000u);
  EXPECT_GT(pools_.catalog().distinct_vendors(), 100u);
  EXPECT_GT(pools_.catalog().distinct_models(), 1'000u);
}

TEST_F(TacPoolsTest, SmartphonesHaveSmartphoneProperties) {
  stats::Rng rng{1};
  for (int i = 0; i < 200; ++i) {
    const auto tac = pools_.draw(rng, EquipmentCategory::kSmartphone);
    const auto* info = pools_.catalog().lookup(tac);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->label, GsmaLabel::kSmartphone);
    EXPECT_TRUE(is_major_smartphone_os(info->os));
    EXPECT_TRUE(info->bands.has(Rat::kThreeG));
  }
}

TEST_F(TacPoolsTest, FeaturePhonesAre2GCapable) {
  stats::Rng rng{2};
  for (int i = 0; i < 200; ++i) {
    const auto* info =
        pools_.catalog().lookup(pools_.draw(rng, EquipmentCategory::kFeaturePhone));
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->label, GsmaLabel::kFeaturePhone);
    EXPECT_FALSE(is_major_smartphone_os(info->os));
    EXPECT_TRUE(info->bands.has(Rat::kTwoG));
  }
}

TEST_F(TacPoolsTest, ModulesAreModemOrModule) {
  stats::Rng rng{3};
  for (int i = 0; i < 200; ++i) {
    const auto* info =
        pools_.catalog().lookup(pools_.draw(rng, EquipmentCategory::kM2MModule));
    ASSERT_NE(info, nullptr);
    EXPECT_TRUE(info->label == GsmaLabel::kModule || info->label == GsmaLabel::kModem);
    EXPECT_TRUE(info->bands.has(Rat::kTwoG));
  }
}

TEST_F(TacPoolsTest, TopModuleVendorsDominate) {
  stats::Rng rng{4};
  std::size_t top = 0;
  constexpr int kN = 5'000;
  const auto top_vendors = top_m2m_module_vendors();
  for (int i = 0; i < kN; ++i) {
    const auto* info =
        pools_.catalog().lookup(pools_.draw(rng, EquipmentCategory::kM2MModule));
    ASSERT_NE(info, nullptr);
    for (auto vendor : top_vendors) {
      if (info->vendor == vendor) {
        ++top;
        break;
      }
    }
  }
  // §4.3: Gemalto + Telit + Sierra Wireless ≈ 75% of inbound roamers.
  EXPECT_NEAR(static_cast<double>(top) / kN, 0.75, 0.08);
}

TEST_F(TacPoolsTest, VendorRestrictedDraw) {
  stats::Rng rng{5};
  for (int i = 0; i < 100; ++i) {
    const auto tac = pools_.draw_vendor(rng, EquipmentCategory::kM2MModule, "Gemalto");
    const auto* info = pools_.catalog().lookup(tac);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->vendor, "Gemalto");
  }
}

TEST_F(TacPoolsTest, UnknownVendorFallsBack) {
  stats::Rng rng{6};
  const auto tac = pools_.draw_vendor(rng, EquipmentCategory::kM2MModule, "NoSuchVendor");
  EXPECT_NE(pools_.catalog().lookup(tac), nullptr);
}

TEST_F(TacPoolsTest, FillerEquipmentIsUnknownLabel) {
  stats::Rng rng{7};
  for (int i = 0; i < 100; ++i) {
    const auto* info = pools_.catalog().lookup(pools_.draw_filler(rng));
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->label, GsmaLabel::kUnknown);
    EXPECT_FALSE(is_major_smartphone_os(info->os));
  }
}

TEST_F(TacPoolsTest, DeterministicForSeed) {
  TacPools other{TacPools::Config{.seed = 7}};
  stats::Rng rng_a{9};
  stats::Rng rng_b{9};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(pools_.draw(rng_a, EquipmentCategory::kSmartphone),
              other.draw(rng_b, EquipmentCategory::kSmartphone));
  }
}

TEST(TacCatalog, AddAndLookup) {
  TacCatalog catalog;
  catalog.add(TacInfo{.tac = 1, .vendor = "V", .model = "M"});
  ASSERT_NE(catalog.lookup(1), nullptr);
  EXPECT_EQ(catalog.lookup(1)->vendor, "V");
  EXPECT_EQ(catalog.lookup(2), nullptr);
}

TEST(TacCatalog, DuplicateTacLastWins) {
  TacCatalog catalog;
  catalog.add(TacInfo{.tac = 1, .vendor = "Old", .model = "A"});
  catalog.add(TacInfo{.tac = 1, .vendor = "New", .model = "B"});
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.lookup(1)->vendor, "New");
}

TEST(GsmaLabel, Names) {
  EXPECT_EQ(gsma_label_name(GsmaLabel::kSmartphone), "smartphone");
  EXPECT_EQ(gsma_label_name(GsmaLabel::kModule), "module");
  EXPECT_EQ(gsma_label_name(GsmaLabel::kUnknown), "unknown");
}

TEST(DeviceOs, MajorSmartphoneOsSet) {
  EXPECT_TRUE(is_major_smartphone_os(DeviceOs::kAndroid));
  EXPECT_TRUE(is_major_smartphone_os(DeviceOs::kIos));
  EXPECT_TRUE(is_major_smartphone_os(DeviceOs::kBlackberry));
  EXPECT_TRUE(is_major_smartphone_os(DeviceOs::kWindowsMobile));
  EXPECT_FALSE(is_major_smartphone_os(DeviceOs::kProprietary));
  EXPECT_FALSE(is_major_smartphone_os(DeviceOs::kNone));
}

}  // namespace
}  // namespace wtr::cellnet
