// Property-style tests: randomized inputs, structural invariants. These
// guard the streaming-aggregation algebra (nothing dropped, nothing double
// counted) and the state machines under arbitrary legal histories.

#include <gtest/gtest.h>

#include "core/catalog_builder.hpp"
#include "core/clearing.hpp"
#include "devices/fleet_builder.hpp"
#include "sim/engine.hpp"
#include "signaling/emm_state.hpp"
#include "stats/distributions.hpp"
#include "topology/world.hpp"

namespace wtr {
namespace {

// ---------- Catalog accumulator conservation under random streams.

class CatalogConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CatalogConservation, NothingLostNothingInvented) {
  stats::Rng rng{GetParam()};
  const cellnet::Plmn observer{234, 10, 2};
  const cellnet::Plmn mvno{235, 50, 2};
  const std::array<cellnet::Plmn, 4> sims{observer, mvno, cellnet::Plmn{204, 4, 2},
                                          cellnet::Plmn{214, 7, 2}};
  const std::array<cellnet::Plmn, 3> visiteds{observer, cellnet::Plmn{234, 30, 2},
                                              cellnet::Plmn{204, 1, 2}};

  core::CatalogAccumulator accumulator{{observer, {observer, mvno}}};

  // Expected aggregates, computed independently with the visibility rules.
  std::uint64_t expected_events = 0;
  std::uint64_t expected_failed = 0;
  std::uint64_t expected_bytes = 0;
  std::uint64_t expected_calls = 0;

  auto in_family = [&](cellnet::Plmn sim) { return sim == observer || sim == mvno; };

  for (int i = 0; i < 3'000; ++i) {
    const auto sim = sims[rng.below(sims.size())];
    const auto visited = visiteds[rng.below(visiteds.size())];
    const auto device = 1 + rng.below(40);
    const auto time =
        static_cast<stats::SimTime>(rng.below(5 * stats::kSecondsPerDay));
    const int kind = static_cast<int>(rng.below(3));
    if (kind == 0) {
      signaling::SignalingTransaction txn;
      txn.device = device;
      txn.time = time;
      txn.sim_plmn = sim;
      txn.visited_plmn = visited;
      txn.result = rng.bernoulli(0.2) ? signaling::ResultCode::kNetworkFailure
                                      : signaling::ResultCode::kOk;
      txn.rat = cellnet::Rat::kTwoG;
      txn.tac = 35'000'000;
      accumulator.on_signaling(txn, true);
      if (visited == observer) {
        ++expected_events;
        if (signaling::is_failure(txn.result)) ++expected_failed;
      }
    } else if (kind == 1) {
      records::Xdr xdr;
      xdr.device = device;
      xdr.time = time;
      xdr.sim_plmn = sim;
      xdr.visited_plmn = visited;
      xdr.bytes_up = rng.below(1'000);
      xdr.apn = "internet";
      accumulator.on_xdr(xdr);
      if (visited == observer || in_family(sim)) expected_bytes += xdr.bytes_up;
    } else {
      records::Cdr cdr;
      cdr.device = device;
      cdr.time = time;
      cdr.sim_plmn = sim;
      cdr.visited_plmn = visited;
      cdr.duration_s = 10.0;
      accumulator.on_cdr(cdr);
      if (visited == observer || in_family(sim)) ++expected_calls;
    }
  }

  const auto catalog = accumulator.finalize();
  std::uint64_t events = 0;
  std::uint64_t failed = 0;
  std::uint64_t bytes = 0;
  std::uint64_t calls = 0;
  for (const auto& record : catalog.records()) {
    events += record.signaling_events;
    failed += record.failed_events;
    bytes += record.bytes;
    calls += record.calls;
    EXPECT_GE(record.day, 0);
    EXPECT_LT(record.day, 5);
    EXPECT_TRUE(record.sim_plmn.valid());
    EXPECT_FALSE(record.visited_plmns.empty());
    EXPECT_TRUE(std::is_sorted(record.visited_plmns.begin(),
                               record.visited_plmns.end()));
  }
  EXPECT_EQ(events, expected_events);
  EXPECT_EQ(failed, expected_failed);
  EXPECT_EQ(bytes, expected_bytes);
  EXPECT_EQ(calls, expected_calls);

  // Summaries must conserve the same totals.
  const auto summaries = core::summarize(catalog);
  std::uint64_t summary_events = 0;
  std::uint64_t summary_bytes = 0;
  for (const auto& summary : summaries) {
    summary_events += summary.signaling_events;
    summary_bytes += summary.bytes;
  }
  EXPECT_EQ(summary_events, expected_events);
  EXPECT_EQ(summary_bytes, expected_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CatalogConservation,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------- EMM state machine under random legal histories.

class EmmRandomWalk : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EmmRandomWalk, InvariantsHold) {
  stats::Rng rng{GetParam()};
  signaling::EmmStateMachine emm;
  std::uint64_t attaches = 0;
  std::uint64_t successes = 0;

  for (int step = 0; step < 2'000; ++step) {
    if (!emm.attached()) {
      // Start an attach; feed two results.
      emm.begin_attach(static_cast<topology::OperatorId>(rng.below(5)));
      ++attaches;
      const auto r1 = rng.bernoulli(0.7) ? signaling::ResultCode::kOk
                                         : signaling::ResultCode::kRoamingNotAllowed;
      const auto next = emm.on_attach_step_result(r1);
      if (next) {
        const auto r2 = rng.bernoulli(0.9) ? signaling::ResultCode::kOk
                                           : signaling::ResultCode::kNetworkFailure;
        emm.on_attach_step_result(r2);
      }
      if (emm.attached()) ++successes;
    } else {
      switch (rng.below(3)) {
        case 0: emm.area_update(rng.bernoulli(0.5)); break;
        case 1: emm.detach(); break;
        case 2: emm.cancel_location(); break;
      }
    }
    // Serving network is known exactly while not detached.
    EXPECT_EQ(emm.serving_network().has_value(),
              emm.state() != signaling::EmmState::kDetached);
  }
  EXPECT_EQ(emm.procedures_emitted(signaling::Procedure::kAttach), attaches);
  // Every attach emitted exactly one Authentication.
  EXPECT_EQ(emm.procedures_emitted(signaling::Procedure::kAuthentication), attaches);
  // Detach + CancelLocation events can never exceed successful attaches.
  EXPECT_LE(emm.procedures_emitted(signaling::Procedure::kDetach) +
                emm.procedures_emitted(signaling::Procedure::kCancelLocation),
            successes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmmRandomWalk, ::testing::Values(11, 12, 13, 14, 15));

// ---------- World structural invariants.

TEST(WorldProperties, EuBilateralsAreSymmetricHomeRouted) {
  topology::WorldConfig config;
  config.build_coverage = false;
  const auto world = topology::World::build(config);
  const auto es = world.operators().mnos_in_country("ES");
  const auto fr = world.operators().mnos_in_country("FR");
  for (const auto a : es) {
    for (const auto b : fr) {
      const auto ab = world.bilateral().find(a, b);
      const auto ba = world.bilateral().find(b, a);
      ASSERT_TRUE(ab.has_value());
      ASSERT_TRUE(ba.has_value());
      EXPECT_EQ(ab->breakout, topology::BreakoutType::kHomeRouted);
      EXPECT_EQ(ab->allowed_rats.bits(), ba->allowed_rats.bits());
    }
  }
}

TEST(WorldProperties, SteeringCandidatesAreCountryMnosWithPaths) {
  topology::WorldConfig config;
  config.build_coverage = false;
  const auto world = topology::World::build(config);
  const auto& wk = world.well_known();
  for (const auto* iso : {"GB", "FR", "BR", "JP", "KE"}) {
    const auto local = world.operators().mnos_in_country(iso);
    const auto candidates = world.steering().candidates(
        world.operators(), world.bilateral(), world.hubs(), wk.es_hmno, iso);
    for (const auto& candidate : candidates) {
      EXPECT_NE(std::find(local.begin(), local.end(), candidate.visited), local.end());
      EXPECT_NE(candidate.roaming.path, topology::RoamingPath::kNone);
    }
  }
}

TEST(WorldProperties, ResolveRoamingIsDeterministic) {
  topology::WorldConfig config;
  config.build_coverage = false;
  const auto world = topology::World::build(config);
  const auto& wk = world.well_known();
  for (const auto* iso : {"GB", "US", "AU"}) {
    const auto visited = world.operators().mnos_in_country(iso).front();
    const auto a = world.resolve_roaming(wk.es_hmno, visited);
    const auto b = world.resolve_roaming(wk.es_hmno, visited);
    EXPECT_EQ(a.path, b.path);
    EXPECT_EQ(a.terms.allowed_rats.bits(), b.terms.allowed_rats.bits());
  }
}

// ---------- Heatmap grouping conservation under random data.

class HeatmapProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeatmapProperty, GroupingConservesTotalsAndRowSums) {
  stats::Rng rng{GetParam()};
  stats::Heatmap heatmap;
  const std::array<const char*, 4> rows{"a", "b", "c", "d"};
  for (int i = 0; i < 500; ++i) {
    heatmap.add(rows[rng.below(rows.size())],
                "col" + std::to_string(rng.below(30)), 1 + rng.below(5));
  }
  const auto grouped = heatmap.with_minor_cols_grouped(0.02, "Other");
  EXPECT_EQ(grouped.total(), heatmap.total());
  for (const auto* row : rows) {
    EXPECT_EQ(grouped.row_total(row), heatmap.row_total(row));
    double share_sum = 0.0;
    for (const auto& col : grouped.cols_by_total()) {
      share_sum += grouped.row_share(row, col);
    }
    if (grouped.row_total(row) > 0) {
      EXPECT_NEAR(share_sum, 1.0, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeatmapProperty, ::testing::Values(21, 22, 23));

// ---------- Clearing conservation: total billed equals per-partner sum and
// is invariant to record order.

TEST(ClearingProperties, OrderInvariant) {
  const cellnet::Plmn uk{234, 10, 2};
  std::vector<records::Xdr> xdrs;
  stats::Rng rng{31};
  for (int i = 0; i < 200; ++i) {
    records::Xdr xdr;
    xdr.device = rng.below(50);
    xdr.sim_plmn = rng.bernoulli(0.5) ? cellnet::Plmn{204, 4, 2}
                                      : cellnet::Plmn{214, 7, 2};
    xdr.visited_plmn = uk;
    xdr.bytes_up = rng.below(1'000'000);
    xdrs.push_back(xdr);
  }
  auto run = [&](const std::vector<records::Xdr>& stream) {
    core::ClearingHouse books{{.self = uk, .family = {uk},
                               .side = core::ClearingHouse::Side::kVisited}};
    for (const auto& xdr : stream) books.on_xdr(xdr);
    return books;
  };
  const auto forward = run(xdrs);
  auto reversed_stream = xdrs;
  std::reverse(reversed_stream.begin(), reversed_stream.end());
  const auto reversed = run(reversed_stream);
  EXPECT_EQ(forward.statements(), reversed.statements());
  EXPECT_DOUBLE_EQ(forward.total_billed(), reversed.total_billed());
}

// ---------- Engine edge cases.

TEST(EngineEdgeCases, EmptyEngineRuns) {
  topology::WorldConfig config;
  config.build_coverage = false;
  const auto world = topology::World::build(config);
  sim::Engine engine{world, sim::Engine::Config{.seed = 1, .horizon_days = 5}};
  engine.run({});
  EXPECT_EQ(engine.wakes_processed(), 0u);
}

TEST(EngineEdgeCases, OneDayHorizonStaysInDayZero) {
  topology::WorldConfig config;
  config.build_coverage = false;
  const auto world = topology::World::build(config);
  const cellnet::TacPools pools{cellnet::TacPools::Config{.seed = 2}};
  sim::Engine engine{world, sim::Engine::Config{.seed = 2, .horizon_days = 1}};
  devices::FleetBuilder builder{world, pools, 2};
  devices::FleetSpec spec;
  spec.count = 30;
  spec.home_operator = world.well_known().uk_mno;
  spec.profile = devices::smartphone_profile();
  spec.deployment_iso = "GB";
  spec.horizon_days = 1;
  engine.add_fleet(builder.build(spec), sim::AgentOptions{});

  struct DaySink final : sim::RecordSink {
    std::int32_t max_day = 0;
    void on_signaling(const signaling::SignalingTransaction& txn, bool) override {
      max_day = std::max(max_day, stats::day_of(txn.time));
    }
  } sink;
  engine.run({&sink});
  EXPECT_GT(engine.wakes_processed(), 0u);
  EXPECT_EQ(sink.max_day, 0);  // nothing bleeds into a phantom day 1
}

TEST(FailureInjection, TransientRateSurfacesInCatalog) {
  topology::WorldConfig wconfig;
  wconfig.build_coverage = false;
  const auto world = topology::World::build(wconfig);
  const cellnet::TacPools pools{cellnet::TacPools::Config{.seed = 3}};

  sim::Engine::Config econfig{.seed = 3, .horizon_days = 4};
  econfig.outcomes.transient_failure_rate = 0.25;  // heavy weather
  sim::Engine engine{world, econfig};
  devices::FleetBuilder builder{world, pools, 3};
  devices::FleetSpec spec;
  spec.count = 150;
  spec.home_operator = world.well_known().uk_mno;
  spec.profile = devices::smartphone_profile();
  spec.deployment_iso = "GB";
  spec.horizon_days = 4;
  engine.add_fleet(builder.build(spec), sim::AgentOptions{});

  core::CatalogAccumulator accumulator{
      {world.operators().get(world.well_known().uk_mno).plmn, {}}};
  engine.run({&accumulator});
  const auto catalog = accumulator.finalize();
  std::uint64_t events = 0;
  std::uint64_t failed = 0;
  for (const auto& record : catalog.records()) {
    events += record.signaling_events;
    failed += record.failed_events;
  }
  ASSERT_GT(events, 1'000u);
  // Not every event consults the outcome policy identically (area updates
  // vs attach steps), so bound loosely around the configured rate.
  const double failed_share = static_cast<double>(failed) / static_cast<double>(events);
  EXPECT_GT(failed_share, 0.10);
  EXPECT_LT(failed_share, 0.45);
}

TEST(FailureInjection, UnknownSubscriptionRateRejectsAttaches) {
  topology::WorldConfig wconfig;
  wconfig.build_coverage = false;
  const auto world = topology::World::build(wconfig);
  const cellnet::TacPools pools{cellnet::TacPools::Config{.seed = 4}};

  sim::Engine::Config econfig{.seed = 4, .horizon_days = 2};
  econfig.outcomes.transient_failure_rate = 0.0;
  econfig.outcomes.unknown_subscription_rate = 1.0;  // HSS rejects everyone
  sim::Engine engine{world, econfig};
  devices::FleetBuilder builder{world, pools, 4};
  devices::FleetSpec spec;
  spec.count = 20;
  spec.home_operator = world.well_known().uk_mno;
  spec.profile = devices::m2m_profile(devices::Vertical::kSmartMeter);
  spec.deployment_iso = "GB";
  spec.horizon_days = 2;
  engine.add_fleet(builder.build(spec), sim::AgentOptions{});

  struct Sink final : sim::RecordSink {
    std::uint64_t ok = 0;
    std::uint64_t rejected = 0;
    std::uint64_t cdrs = 0;
    std::uint64_t xdrs = 0;
    void on_signaling(const signaling::SignalingTransaction& txn, bool) override {
      if (txn.result == signaling::ResultCode::kUnknownSubscription) {
        ++rejected;
      } else if (!signaling::is_failure(txn.result)) {
        ++ok;
      }
    }
    void on_cdr(const records::Cdr&) override { ++cdrs; }
    void on_xdr(const records::Xdr&) override { ++xdrs; }
  } sink;
  engine.run({&sink});
  EXPECT_GT(sink.rejected, 0u);
  EXPECT_EQ(sink.ok, 0u);   // nobody ever attaches
  EXPECT_EQ(sink.cdrs, 0u); // so nobody generates usage
  EXPECT_EQ(sink.xdrs, 0u);
}

}  // namespace
}  // namespace wtr
