#include "cellnet/apn.hpp"

#include <gtest/gtest.h>

#include <array>

namespace wtr::cellnet {
namespace {

TEST(Apn, ParsePlainNetworkId) {
  const auto apn = Apn::parse("internet");
  EXPECT_EQ(apn.network_id(), "internet");
  EXPECT_FALSE(apn.operator_id().has_value());
}

TEST(Apn, ParsePaperExample) {
  // The exact example from §4.3: Centrica smart meters on Vodafone NL.
  const auto apn = Apn::parse("smhp.centricaplc.com.mnc004.mcc204.gprs");
  EXPECT_EQ(apn.network_id(), "smhp.centricaplc.com");
  ASSERT_TRUE(apn.operator_id().has_value());
  EXPECT_EQ(apn.operator_id()->mcc(), 204);
  EXPECT_EQ(apn.operator_id()->mnc(), 4);
}

TEST(Apn, ParseLowercases) {
  const auto apn = Apn::parse("SMHP.CentricaPLC.com");
  EXPECT_EQ(apn.network_id(), "smhp.centricaplc.com");
}

TEST(Apn, ToStringRoundTrip) {
  const Apn apn{"telemetry.rwe.com", Plmn{204, 4, 2}};
  EXPECT_EQ(apn.to_string(), "telemetry.rwe.com.mnc004.mcc204.gprs");
  const auto parsed = Apn::parse(apn.to_string());
  EXPECT_EQ(parsed, apn);
}

TEST(Apn, ThreeDigitMncRoundTrip) {
  const Apn apn{"iot.carrier.us", Plmn{310, 410, 3}};
  EXPECT_EQ(apn.to_string(), "iot.carrier.us.mnc410.mcc310.gprs");
  const auto parsed = Apn::parse(apn.to_string());
  ASSERT_TRUE(parsed.operator_id().has_value());
  EXPECT_EQ(parsed.operator_id()->mnc(), 410);
  EXPECT_EQ(parsed.operator_id()->mnc_digits(), 3);
}

TEST(Apn, MalformedOperatorSuffixStaysInNetworkId) {
  const auto apn = Apn::parse("thing.mncXX.mcc204.gprs");
  EXPECT_FALSE(apn.operator_id().has_value());
  EXPECT_EQ(apn.network_id(), "thing.mncxx.mcc204.gprs");
}

TEST(Apn, KeywordMatching) {
  const auto apn = Apn::parse("smhp.centricaplc.com.mnc004.mcc204.gprs");
  EXPECT_TRUE(apn.contains_keyword("centrica"));
  EXPECT_TRUE(apn.contains_keyword("smhp"));
  EXPECT_FALSE(apn.contains_keyword("rwe"));
  EXPECT_FALSE(apn.contains_keyword(""));
  // Operator suffix is not part of the network id.
  EXPECT_FALSE(apn.contains_keyword("mnc004"));
}

TEST(Apn, FirstMatchingKeyword) {
  const auto apn = Apn::parse("telemetry.scania.com");
  constexpr std::array<std::string_view, 3> keywords{"rwe", "scania", "telemetry"};
  const auto match = first_matching_keyword(apn, keywords);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(*match, "rwe" == *match ? "rwe" : "scania");  // first in list order
  EXPECT_EQ(*match, "scania");
}

TEST(Apn, NoKeywordMatch) {
  const auto apn = Apn::parse("internet");
  constexpr std::array<std::string_view, 2> keywords{"rwe", "scania"};
  EXPECT_FALSE(first_matching_keyword(apn, keywords).has_value());
}

TEST(Apn, AsciiLower) {
  EXPECT_EQ(ascii_lower("AbC.123-X"), "abc.123-x");
  EXPECT_EQ(ascii_lower(""), "");
}

TEST(Apn, EmptyApn) {
  const Apn apn;
  EXPECT_TRUE(apn.empty());
  EXPECT_FALSE(apn.contains_keyword("x"));
  EXPECT_EQ(apn.to_string(), "");
}

}  // namespace
}  // namespace wtr::cellnet
