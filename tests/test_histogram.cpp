#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace wtr::stats {
namespace {

TEST(LinearHistogram, BinBoundaries) {
  LinearHistogram h{0.0, 10.0, 5};
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(4), 10.0);
}

TEST(LinearHistogram, PlacesValues) {
  LinearHistogram h{0.0, 10.0, 5};
  h.add(0.0);
  h.add(1.99);
  h.add(2.0);
  h.add(9.99);
  EXPECT_EQ(h.bin_value(0), 2u);
  EXPECT_EQ(h.bin_value(1), 1u);
  EXPECT_EQ(h.bin_value(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(LinearHistogram, UnderOverflow) {
  LinearHistogram h{0.0, 10.0, 2};
  h.add(-0.1);
  h.add(10.0);
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(LinearHistogram, WeightedAdd) {
  LinearHistogram h{0.0, 4.0, 2};
  h.add(1.0, 5);
  EXPECT_EQ(h.bin_value(0), 5u);
}

TEST(LinearHistogram, NanGoesToNanBucket) {
  // NaN compares false against both range guards, so before the fix it
  // reached the float->size_t cast — UB that float-cast-overflow traps.
  LinearHistogram h{0.0, 10.0, 5};
  h.add(std::numeric_limits<double>::quiet_NaN(), 3);
  h.add(5.0);
  EXPECT_EQ(h.nan_count(), 3u);
  EXPECT_EQ(h.total(), 4u);  // NaN samples still count toward total
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.bin_value(2), 1u);
}

TEST(LinearHistogram, InfinitiesUseOverUnderflow) {
  LinearHistogram h{0.0, 10.0, 5};
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.nan_count(), 0u);
}

TEST(LogHistogram, ZeroBin) {
  LogHistogram h;
  h.add(0.0);
  h.add(0.9);
  EXPECT_EQ(h.zero_bin(), 2u);
}

TEST(LogHistogram, PowersOfTwo) {
  LogHistogram h;
  h.add(1.0);    // bin 0: [1, 2)
  h.add(1.99);
  h.add(2.0);    // bin 1: [2, 4)
  h.add(1024.0); // bin 10
  EXPECT_EQ(h.bin_value(0), 2u);
  EXPECT_EQ(h.bin_value(1), 1u);
  EXPECT_EQ(h.bin_value(10), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(LogHistogram, HugeValuesClampToLastBin) {
  LogHistogram h{8};
  h.add(1e30);
  EXPECT_EQ(h.bin_value(8), 1u);
}

TEST(LogHistogram, NanGoesToNanBucket) {
  LogHistogram h{8};
  h.add(std::numeric_limits<double>::quiet_NaN(), 2);
  h.add(4.0);
  EXPECT_EQ(h.nan_count(), 2u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.zero_bin(), 0u);
  EXPECT_EQ(h.bin_value(2), 1u);
}

TEST(LogHistogram, InfinityClampsToLastBin) {
  // floor(log2(+inf)) is +inf — casting that is the same UB as NaN; it must
  // clamp into the top bin like any over-range finite value.
  LogHistogram h{8};
  h.add(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.bin_value(8), 1u);
  EXPECT_EQ(h.nan_count(), 0u);
  // -inf is < 1.0, so it lands in the zero bin.
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.zero_bin(), 1u);
}

TEST(CategoryCounter, CountsAndShares) {
  CategoryCounter counter;
  counter.add("a", 3);
  counter.add("b");
  counter.add("a");
  EXPECT_EQ(counter.total(), 5u);
  EXPECT_EQ(counter.count("a"), 4u);
  EXPECT_EQ(counter.count("missing"), 0u);
  EXPECT_DOUBLE_EQ(counter.share("a"), 0.8);
  EXPECT_EQ(counter.distinct(), 2u);
}

TEST(CategoryCounter, SortedDescendingWithTieBreak) {
  CategoryCounter counter;
  counter.add("x", 2);
  counter.add("a", 2);
  counter.add("z", 5);
  const auto ranked = counter.sorted();
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].first, "z");
  EXPECT_EQ(ranked[1].first, "a");  // tie broken alphabetically
  EXPECT_EQ(ranked[2].first, "x");
}

TEST(CategoryCounter, TopKShare) {
  CategoryCounter counter;
  counter.add("a", 6);
  counter.add("b", 3);
  counter.add("c", 1);
  EXPECT_DOUBLE_EQ(counter.top_k_share(1), 0.6);
  EXPECT_DOUBLE_EQ(counter.top_k_share(2), 0.9);
  EXPECT_DOUBLE_EQ(counter.top_k_share(10), 1.0);
}

TEST(CategoryCounter, EmptyShares) {
  CategoryCounter counter;
  EXPECT_DOUBLE_EQ(counter.share("a"), 0.0);
  EXPECT_DOUBLE_EQ(counter.top_k_share(3), 0.0);
}

}  // namespace
}  // namespace wtr::stats
