// End-to-end integration: MNO scenario → catalog → census → figures.
// Assertions check the *shape* of the paper's results with generous
// tolerances (this is a small-scale run).

#include <gtest/gtest.h>

#include "core/activity_metrics.hpp"
#include "core/census.hpp"
#include "core/classifier_validation.hpp"
#include "core/rat_usage.hpp"
#include "core/traffic_metrics.hpp"
#include "core/vertical_analysis.hpp"
#include "tracegen/mno_scenario.hpp"

namespace wtr {
namespace {

class CensusIntegration : public ::testing::Test {
 protected:
  struct State {
    std::unique_ptr<tracegen::MnoScenario> scenario;
    records::DevicesCatalog catalog;
    core::ClassifiedPopulation population;
  };

  static State& state() {
    static State s = [] {
      tracegen::MnoScenarioConfig config;
      config.seed = 11;
      config.total_devices = 4'000;
      auto scenario = std::make_unique<tracegen::MnoScenario>(config);
      core::CatalogAccumulator acc{{scenario->observer_plmn(), scenario->family_plmns()}};
      scenario->run({&acc});
      auto catalog = acc.finalize();
      auto population = core::run_census(catalog, scenario->observer_plmn(),
                                         scenario->mvno_plmns(), scenario->tac_catalog());
      return State{std::move(scenario), std::move(catalog), std::move(population)};
    }();
    return s;
  }
};

TEST_F(CensusIntegration, PopulationObserved) {
  EXPECT_GT(state().catalog.size(), 10'000u);
  EXPECT_GT(state().population.size(), 3'000u);
}

TEST_F(CensusIntegration, ClassSharesNearPaper) {
  const auto& classification = state().population.classification;
  EXPECT_NEAR(classification.share_of(core::ClassLabel::kSmart), 0.62, 0.08);
  EXPECT_NEAR(classification.share_of(core::ClassLabel::kFeat), 0.08, 0.05);
  EXPECT_NEAR(classification.share_of(core::ClassLabel::kM2M), 0.26, 0.08);
  EXPECT_NEAR(classification.share_of(core::ClassLabel::kM2MMaybe), 0.04, 0.03);
}

TEST_F(CensusIntegration, InboundRoamersAreMostlyM2M) {
  const auto heatmap = core::class_vs_label(state().population);
  // Fig. 6-right: the I:H column is dominated by m2m.
  EXPECT_GT(heatmap.col_share("m2m", "I:H"), 0.5);
  // Fig. 6-left: most m2m devices are inbound; most smartphones are not.
  EXPECT_GT(heatmap.row_share("m2m", "I:H"), 0.5);
  EXPECT_LT(heatmap.row_share("smart", "I:H"), 0.3);
}

TEST_F(CensusIntegration, DailyLabelSharesShape) {
  const auto shares =
      core::daily_label_shares(state().catalog, state().population.labeler);
  // H:H > V:H > I:H, all three substantial (§4.2: 48/33/18).
  EXPECT_GT(shares.share("H:H"), shares.share("V:H"));
  EXPECT_GT(shares.share("V:H"), shares.share("I:H"));
  EXPECT_GT(shares.share("I:H"), 0.05);
  EXPECT_NEAR(shares.share("H:H"), 0.48, 0.15);
}

TEST_F(CensusIntegration, HomeCountryConcentration) {
  const auto countries = core::inbound_home_countries(state().population);
  // Fig. 5: NL leads; top-3 hold the majority; top-20 nearly everything.
  EXPECT_EQ(countries.sorted().front().first, "NL");
  EXPECT_GT(countries.top_k_share(3), 0.45);
  EXPECT_GT(countries.top_k_share(20), 0.88);

  const auto by_class = core::inbound_home_country_by_class(state().population);
  const double m2m_top3 = by_class.row_share("m2m", "NL") +
                          by_class.row_share("m2m", "SE") +
                          by_class.row_share("m2m", "ES");
  const double smart_top3 = by_class.row_share("smart", "NL") +
                            by_class.row_share("smart", "SE") +
                            by_class.row_share("smart", "ES");
  EXPECT_GT(m2m_top3, 0.7);       // paper: 83%
  EXPECT_LT(smart_top3, 0.45);    // paper: 17%
  EXPECT_GT(m2m_top3, smart_top3);
}

TEST_F(CensusIntegration, ActiveDaysContrast) {
  const auto figure = core::active_days_figure(state().population);
  ASSERT_FALSE(figure.inbound_m2m.empty());
  ASSERT_FALSE(figure.inbound_smart.empty());
  // Fig. 7: inbound m2m stays much longer than inbound smartphones.
  EXPECT_GT(figure.inbound_m2m.median(), 2.0 * figure.inbound_smart.median());
  // Natives of both classes look similar (within 2x).
  ASSERT_FALSE(figure.native_m2m.empty());
  ASSERT_FALSE(figure.native_smart.empty());
  const double ratio = figure.native_m2m.median() / figure.native_smart.median();
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST_F(CensusIntegration, GyrationContrast) {
  // Fig. 8: inbound m2m is mostly stationary.
  const double share_above_1km = core::gyration_share_above(
      state().population, core::ClassLabel::kM2M, true, 1'000.0);
  EXPECT_LT(share_above_1km, 0.45);  // paper: ~20%
  const double smart_above_1km = core::gyration_share_above(
      state().population, core::ClassLabel::kSmart, false, 1'000.0);
  EXPECT_GT(smart_above_1km, share_above_1km);
}

TEST_F(CensusIntegration, RatUsageShape) {
  const auto figure = core::rat_usage_figure(state().population);
  // Fig. 9: m2m lives on 2G; smartphones do not.
  const double m2m_2g_only =
      core::class_mask_share(figure.connectivity, core::ClassLabel::kM2M, "2G");
  const double smart_2g_only =
      core::class_mask_share(figure.connectivity, core::ClassLabel::kSmart, "2G");
  EXPECT_GT(m2m_2g_only, 0.5);   // paper: 77.4%
  EXPECT_LT(smart_2g_only, 0.2);
  // A sizable no-data m2m slice exists (paper: 24.5%).
  const double m2m_no_data =
      core::class_mask_share(figure.data, core::ClassLabel::kM2M, "none");
  EXPECT_GT(m2m_no_data, 0.08);
  // Feature phones: no-data dominates their data panel (paper: 56.8%).
  const double feat_no_data =
      core::class_mask_share(figure.data, core::ClassLabel::kFeat, "none");
  EXPECT_GT(feat_no_data, 0.35);
}

TEST_F(CensusIntegration, TrafficVolumes) {
  const auto figure = core::traffic_figure(state().population);
  const auto& m2m_inbound = figure.bytes_per_day.at("m2m/inbound");
  const auto& smart_native = figure.bytes_per_day.at("smart/native");
  ASSERT_FALSE(m2m_inbound.empty());
  ASSERT_FALSE(smart_native.empty());
  // Fig. 10-right: inbound m2m moves orders of magnitude less data.
  EXPECT_LT(m2m_inbound.quantile(0.9), smart_native.quantile(0.5));
  // Fig. 10-left: m2m signals less than smartphones.
  EXPECT_LT(figure.signaling_per_day.at("m2m/inbound").median(),
            figure.signaling_per_day.at("smart/native").median());
  // Fig. 10-center: most m2m devices make no calls; smartphones do.
  EXPECT_GT(figure.calls_per_day.at("smart/native").median(),
            figure.calls_per_day.at("m2m/inbound").median());
}

TEST_F(CensusIntegration, VerticalContrast) {
  const auto figure = core::vertical_figure(state().population);
  ASSERT_TRUE(figure.signaling_per_day.contains("connected-car"));
  ASSERT_TRUE(figure.signaling_per_day.contains("smart-meter"));
  // Fig. 12: cars are chattier and move more data than meters.
  EXPECT_GT(figure.signaling_per_day.at("connected-car").median(),
            figure.signaling_per_day.at("smart-meter").median());
  EXPECT_GT(figure.bytes_per_day.at("connected-car").median(),
            figure.bytes_per_day.at("smart-meter").median());
  if (figure.gyration_m.contains("connected-car") &&
      figure.gyration_m.contains("smart-meter")) {
    EXPECT_GT(figure.gyration_m.at("connected-car").median(),
              figure.gyration_m.at("smart-meter").median());
  }
}

TEST_F(CensusIntegration, ClassifierValidatesWell) {
  const auto report = core::validate_classification(
      state().population, tracegen::class_truth(state().scenario->ground_truth()));
  EXPECT_GT(report.matched, 3'000u);
  EXPECT_EQ(report.unmatched, 0u);
  EXPECT_GT(report.lenient_accuracy, 0.9);
  EXPECT_GT(report.m2m_precision, 0.9);
  EXPECT_GT(report.m2m_recall, 0.9);
}

TEST_F(CensusIntegration, ApnPipelineStats) {
  const auto& c = state().population.classification;
  EXPECT_GT(c.distinct_apns, 50u);
  EXPECT_GT(c.validated_m2m_apns, 10u);
  EXPECT_GT(c.consumer_apns, 5u);
  // §4.3: a significant fraction of devices exposes no APN (paper: 21%).
  const double no_apn_share = static_cast<double>(c.devices_without_apn) /
                              static_cast<double>(state().population.size());
  EXPECT_GT(no_apn_share, 0.08);
  // Property propagation did real work.
  EXPECT_GT(c.m2m_by_propagation, 0u);
}

}  // namespace
}  // namespace wtr
