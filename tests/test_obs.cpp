#include <gtest/gtest.h>

#include <sstream>

#include "io/csv.hpp"
#include "obs/observability.hpp"
#include "obs/run_manifest.hpp"
#include "signaling/transaction.hpp"
#include "tracegen/mno_scenario.hpp"

namespace wtr::obs {
namespace {

// --- MetricsRegistry -------------------------------------------------------

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry registry;
  auto& c = registry.counter("events");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same instance (handle stability).
  EXPECT_EQ(&registry.counter("events"), &c);
  EXPECT_EQ(registry.counter("events").value(), 42u);
}

TEST(Metrics, GaugeSetAndSetMax) {
  MetricsRegistry registry;
  auto& g = registry.gauge("depth");
  g.set(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.set_max(3.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.set_max(11.0);
  EXPECT_DOUBLE_EQ(g.value(), 11.0);
  g.set(2.0);  // plain set always wins
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(Metrics, HistogramBucketPlacement) {
  Histogram h{{1.0, 10.0, 100.0}};
  ASSERT_EQ(h.bucket_counts().size(), 4u);  // 3 bounds + overflow

  h.add(0.5);    // <= 1     -> bucket 0
  h.add(1.0);    // == bound -> bucket 0 (inclusive tops)
  h.add(5.0);    //          -> bucket 1
  h.add(100.0);  //          -> bucket 2
  h.add(1e6);    // above    -> overflow

  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1e6);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
  EXPECT_DOUBLE_EQ(h.mean(), h.sum() / 5.0);
}

TEST(Metrics, EmptyHistogramIsWellDefined) {
  Histogram h{{1.0}};
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Metrics, HistogramBoundsFixedAtFirstCreation) {
  MetricsRegistry registry;
  auto& h = registry.histogram("lat", {1.0, 2.0});
  auto& again = registry.histogram("lat", {99.0});  // ignored bounds
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.upper_bounds().size(), 2u);
}

TEST(Metrics, FindDoesNotCreate) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.find_counter("nope"), nullptr);
  EXPECT_EQ(registry.find_gauge("nope"), nullptr);
  EXPECT_EQ(registry.find_histogram("nope"), nullptr);
  registry.counter("yes").inc();
  ASSERT_NE(registry.find_counter("yes"), nullptr);
  EXPECT_EQ(registry.find_counter("yes")->value(), 1u);
  EXPECT_EQ(registry.counters().size(), 1u);
}

TEST(Metrics, ExponentialBucketLadders) {
  const auto ladder = exponential_buckets(1.0, 10.0, 4);
  ASSERT_EQ(ladder.size(), 4u);
  EXPECT_DOUBLE_EQ(ladder[0], 1.0);
  EXPECT_DOUBLE_EQ(ladder[3], 1000.0);
  // The default ladders are ascending and non-empty.
  for (const auto& bounds : {latency_buckets_s(), size_buckets()}) {
    ASSERT_GE(bounds.size(), 2u);
    for (std::size_t i = 1; i < bounds.size(); ++i) EXPECT_GT(bounds[i], bounds[i - 1]);
  }
}

// --- ScopedTimer / PhaseTimers ---------------------------------------------

TEST(ScopedTimer, NestingBuildsSlashPaths) {
  PhaseTimers timers;
  {
    ScopedTimer outer{&timers, "outer"};
    {
      ScopedTimer inner{&timers, "inner"};
      EXPECT_GE(inner.elapsed_s(), 0.0);
    }
    { ScopedTimer inner{&timers, "inner"}; }  // second span, same path
  }
  const auto phases = timers.phases();
  ASSERT_EQ(phases.size(), 2u);
  // First-opened order: "outer" before "outer/inner".
  EXPECT_EQ(phases[0].path, "outer");
  EXPECT_EQ(phases[0].depth, 0);
  EXPECT_EQ(phases[0].count, 1u);
  EXPECT_EQ(phases[1].path, "outer/inner");
  EXPECT_EQ(phases[1].depth, 1);
  EXPECT_EQ(phases[1].count, 2u);
  // Inner wall time is contained in outer's.
  EXPECT_GE(timers.total_s("outer"), timers.total_s("outer/inner"));
  EXPECT_DOUBLE_EQ(timers.total_s("never-ran"), 0.0);
}

TEST(ScopedTimer, SequentialTopLevelSpansDoNotNest) {
  PhaseTimers timers;
  { ScopedTimer a{&timers, "a"}; }
  { ScopedTimer b{&timers, "b"}; }
  const auto phases = timers.phases();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].path, "a");
  EXPECT_EQ(phases[1].path, "b");
  EXPECT_EQ(phases[1].depth, 0);
}

TEST(ScopedTimer, NullTimersIsNoOp) {
  ScopedTimer timer{nullptr, "ghost"};
  EXPECT_GE(timer.elapsed_s(), 0.0);  // still measures locally
}

// --- EngineProbe -----------------------------------------------------------

signaling::SignalingTransaction make_txn(stats::SimTime t, signaling::Procedure proc,
                                         signaling::ResultCode result) {
  signaling::SignalingTransaction txn;
  txn.device = 1;
  txn.time = t;
  txn.procedure = proc;
  txn.result = result;
  return txn;
}

TEST(EngineProbe, SamplesAtConfiguredCadence) {
  EngineProbe probe{EngineProbeConfig{.sample_every_s = 100}};
  probe.begin_run(nullptr, 10);
  EXPECT_TRUE(probe.due(0));  // first wake always samples
  probe.on_tick(0, 10, 1);
  EXPECT_FALSE(probe.due(50));
  EXPECT_TRUE(probe.due(100));
  probe.on_tick(120, 8, 2);  // late wake: sample carries the actual time
  EXPECT_FALSE(probe.due(199));
  EXPECT_TRUE(probe.due(200));
  probe.on_tick(200, 6, 3);
  probe.end_run(250, 0, 4);

  const auto& samples = probe.samples();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].sim_time, 0);
  EXPECT_EQ(samples[1].sim_time, 120);
  EXPECT_EQ(samples[2].sim_time, 200);
  EXPECT_EQ(samples[3].sim_time, 250);  // end_run's closing sample
  EXPECT_EQ(samples[3].wakes, 4u);
  EXPECT_EQ(probe.queue_depth_max(), 10u);
  // After end_run the probe goes quiescent until the next begin_run.
  EXPECT_FALSE(probe.due(1'000'000));
}

TEST(EngineProbe, CountsRecordsAndAttachFailures) {
  EngineProbe probe;
  probe.begin_run(nullptr, 0);
  using enum signaling::Procedure;
  using enum signaling::ResultCode;
  probe.on_signaling(make_txn(10, kAttach, kOk), false);
  probe.on_signaling(make_txn(20, kAttach, kRoamingNotAllowed), false);
  probe.on_signaling(make_txn(30, kUpdateLocation, kNetworkFailure), false);
  probe.on_signaling(make_txn(40, kDetach, kNetworkFailure), false);  // not attach-family
  records::Cdr cdr;
  cdr.time = stats::day_start(1) + 5;
  probe.on_cdr(cdr);
  records::Xdr xdr;
  xdr.time = 50;
  probe.on_xdr(xdr);

  EXPECT_EQ(probe.records_total(), 6u);
  EXPECT_EQ(probe.signaling_total(), 4u);
  EXPECT_EQ(probe.attach_attempts(), 3u);
  EXPECT_EQ(probe.attach_failures(), 2u);
  EXPECT_DOUBLE_EQ(probe.attach_failure_rate(), 2.0 / 3.0);
  // Day 0 got 5 records, day 1 got the CDR.
  ASSERT_EQ(probe.records_per_day().size(), 2u);
  EXPECT_EQ(probe.records_per_day().at(0), 5u);
  EXPECT_EQ(probe.records_per_day().at(1), 1u);
  EXPECT_EQ(probe.records_per_day_max(), 5u);
}

// --- Determinism: instrumented vs bare run ---------------------------------

/// Captures the signaling stream as CSV bytes — the strongest cheap proxy
/// for "the obs layer does not perturb the simulation".
class CsvCaptureSink final : public sim::RecordSink {
 public:
  CsvCaptureSink() : writer_(buffer_) { writer_.write_row(signaling::csv_header()); }

  void on_signaling(const signaling::SignalingTransaction& txn, bool) override {
    writer_.write_row(signaling::to_csv_fields(txn));
  }

  [[nodiscard]] std::string str() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  io::CsvWriter writer_;
};

std::string run_capture(obs::RunObservation* observation) {
  tracegen::MnoScenarioConfig config;
  config.seed = 4242;
  config.total_devices = 400;
  config.days = 4;
  config.build_coverage = false;
  if (observation != nullptr) config.obs = observation->view();
  tracegen::MnoScenario scenario{config};
  CsvCaptureSink sink;
  scenario.run({&sink});
  return sink.str();
}

TEST(Observability, InstrumentedRunIsByteIdenticalToBareRun) {
  const std::string bare = run_capture(nullptr);
  obs::RunObservation observation;
  const std::string instrumented = run_capture(&observation);

  ASSERT_GT(bare.size(), 1'000u);  // the run actually produced signaling
  EXPECT_EQ(bare, instrumented);

  // ... and the instrumented run really was instrumented.
  EXPECT_GT(observation.probe().records_total(), 0u);
  EXPECT_GT(observation.probe().samples().size(), 2u);
  ASSERT_NE(observation.metrics().find_counter("engine.wakes"), nullptr);
  EXPECT_GT(observation.metrics().find_counter("engine.wakes")->value(), 0u);
  ASSERT_NE(observation.metrics().find_counter("signaling.evaluations"), nullptr);
  EXPECT_GT(observation.metrics().find_counter("signaling.evaluations")->value(), 0u);
  EXPECT_GT(observation.timers().total_s("engine/run"), 0.0);
  EXPECT_GT(observation.timers().total_s("scenario/world"), 0.0);
}

TEST(Observability, DefaultHandleIsDisabled) {
  Observability obs;
  EXPECT_FALSE(obs.enabled());
  RunObservation observation;
  EXPECT_TRUE(observation.view().enabled());
}

// --- RunManifest -----------------------------------------------------------

TEST(RunManifest, JsonContainsSchemaPhasesMetricsAndResults) {
  RunObservation observation;
  observation.metrics().counter("demo.count").inc(3);
  observation.metrics().gauge("demo.depth").set(4.5);
  observation.metrics().histogram("demo.hist", {1.0, 10.0}).add(2.0);
  { ScopedTimer t{&observation.timers(), "phase_a"}; }

  RunManifest manifest{"unit"};
  manifest.set_seed(7);
  manifest.set_scale(1234);
  manifest.set_git_describe("test-describe");
  observation.fill(manifest);
  manifest.add_result("share", 0.25);
  manifest.add_result("count", std::uint64_t{99});
  manifest.add_result("verdict", std::string{"PASS"});

  const std::string json = manifest.to_json();
  for (const char* needle :
       {"\"schema\": \"wtr-run-manifest/1\"", "\"name\": \"unit\"", "\"seed\": 7",
        "\"scale\": 1234", "\"git_describe\": \"test-describe\"", "\"phase_a\"",
        "\"demo.count\"", "\"demo.depth\"", "\"demo.hist\"", "\"share\": 0.25",
        "\"count\": 99", "\"verdict\": \"PASS\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << "missing " << needle;
  }

  const std::string csv = manifest.phases_csv();
  EXPECT_NE(csv.find("phase,wall_s,count,depth"), std::string::npos);
  EXPECT_NE(csv.find("phase_a"), std::string::npos);
}

}  // namespace
}  // namespace wtr::obs
