#include <gtest/gtest.h>

#include "records/platform_transaction.hpp"
#include "signaling/emm_state.hpp"
#include "signaling/outcome_policy.hpp"
#include "topology/world.hpp"

namespace wtr::signaling {
namespace {

TEST(Procedure, Names) {
  EXPECT_EQ(procedure_name(Procedure::kAttach), "Attach");
  EXPECT_EQ(procedure_name(Procedure::kUpdateLocation), "UpdateLocation");
  EXPECT_EQ(procedure_name(Procedure::kCancelLocation), "CancelLocation");
}

TEST(Procedure, PlatformProbeVisibility) {
  EXPECT_TRUE(visible_to_platform_probes(Procedure::kAuthentication));
  EXPECT_TRUE(visible_to_platform_probes(Procedure::kUpdateLocation));
  EXPECT_TRUE(visible_to_platform_probes(Procedure::kCancelLocation));
  EXPECT_FALSE(visible_to_platform_probes(Procedure::kAttach));
  EXPECT_FALSE(visible_to_platform_probes(Procedure::kTrackingAreaUpdate));
}

TEST(ResultCode, FailureClassification) {
  EXPECT_FALSE(is_failure(ResultCode::kOk));
  EXPECT_TRUE(is_failure(ResultCode::kRoamingNotAllowed));
  EXPECT_TRUE(is_failure(ResultCode::kUnknownSubscription));
  EXPECT_TRUE(is_failure(ResultCode::kFeatureUnsupported));
  EXPECT_TRUE(is_failure(ResultCode::kNetworkFailure));
}

TEST(EmmStateMachine, HappyPathAttach) {
  EmmStateMachine emm;
  EXPECT_EQ(emm.state(), EmmState::kDetached);
  const auto first = emm.begin_attach(3);
  EXPECT_EQ(first, Procedure::kAuthentication);
  EXPECT_EQ(emm.state(), EmmState::kAuthenticating);

  const auto next = emm.on_attach_step_result(ResultCode::kOk);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, Procedure::kUpdateLocation);
  EXPECT_EQ(emm.state(), EmmState::kUpdatingLocation);

  EXPECT_FALSE(emm.on_attach_step_result(ResultCode::kOk).has_value());
  EXPECT_TRUE(emm.attached());
  EXPECT_EQ(emm.serving_network(), 3u);
}

TEST(EmmStateMachine, AuthFailureReturnsToDetached) {
  EmmStateMachine emm;
  emm.begin_attach(1);
  EXPECT_FALSE(emm.on_attach_step_result(ResultCode::kRoamingNotAllowed).has_value());
  EXPECT_EQ(emm.state(), EmmState::kDetached);
  EXPECT_FALSE(emm.serving_network().has_value());
}

TEST(EmmStateMachine, UpdateLocationFailureReturnsToDetached) {
  EmmStateMachine emm;
  emm.begin_attach(1);
  emm.on_attach_step_result(ResultCode::kOk);
  emm.on_attach_step_result(ResultCode::kNetworkFailure);
  EXPECT_EQ(emm.state(), EmmState::kDetached);
}

TEST(EmmStateMachine, AreaUpdateKinds) {
  EmmStateMachine emm;
  emm.begin_attach(1);
  emm.on_attach_step_result(ResultCode::kOk);
  emm.on_attach_step_result(ResultCode::kOk);
  EXPECT_EQ(emm.area_update(true), Procedure::kTrackingAreaUpdate);
  EXPECT_EQ(emm.area_update(false), Procedure::kRoutingAreaUpdate);
  EXPECT_TRUE(emm.attached());
}

TEST(EmmStateMachine, DetachAndCancel) {
  EmmStateMachine emm;
  emm.begin_attach(1);
  emm.on_attach_step_result(ResultCode::kOk);
  emm.on_attach_step_result(ResultCode::kOk);
  EXPECT_EQ(emm.detach(), Procedure::kDetach);
  EXPECT_EQ(emm.state(), EmmState::kDetached);

  emm.begin_attach(2);
  emm.on_attach_step_result(ResultCode::kOk);
  emm.on_attach_step_result(ResultCode::kOk);
  EXPECT_EQ(emm.cancel_location(), Procedure::kCancelLocation);
  EXPECT_EQ(emm.state(), EmmState::kDetached);
}

TEST(EmmStateMachine, CountsProcedures) {
  EmmStateMachine emm;
  emm.begin_attach(1);
  emm.on_attach_step_result(ResultCode::kOk);
  emm.on_attach_step_result(ResultCode::kOk);
  emm.area_update(true);
  emm.detach();
  EXPECT_EQ(emm.procedures_emitted(Procedure::kAttach), 1u);
  EXPECT_EQ(emm.procedures_emitted(Procedure::kAuthentication), 1u);
  EXPECT_EQ(emm.procedures_emitted(Procedure::kUpdateLocation), 1u);
  EXPECT_EQ(emm.procedures_emitted(Procedure::kTrackingAreaUpdate), 1u);
  EXPECT_EQ(emm.procedures_emitted(Procedure::kDetach), 1u);
  EXPECT_EQ(emm.total_procedures(), 5u);
}

class OutcomePolicyTest : public ::testing::Test {
 protected:
  static const topology::World& world() {
    static const topology::World w = [] {
      topology::WorldConfig config;
      config.build_coverage = false;
      return topology::World::build(config);
    }();
    return w;
  }

  OutcomePolicy policy_{OutcomePolicyConfig{.transient_failure_rate = 0.0}};
  cellnet::RatMask all_{0b111};
  stats::Rng rng_{1};
};

TEST_F(OutcomePolicyTest, NativeAttachOk) {
  const auto uk = world().well_known().uk_mno;
  EXPECT_EQ(policy_.evaluate(world(), 0, uk, uk, cellnet::Rat::kFourG, all_, all_, true, 0, rng_),
            ResultCode::kOk);
}

TEST_F(OutcomePolicyTest, MvnoOnHostIsHome) {
  const auto& wk = world().well_known();
  EXPECT_EQ(policy_.evaluate(world(), 0, wk.uk_mvnos.front(), wk.uk_mno,
                             cellnet::Rat::kThreeG, all_, all_, true, 0, rng_),
            ResultCode::kOk);
}

TEST_F(OutcomePolicyTest, HardwareWithoutRatUnsupported) {
  const auto uk = world().well_known().uk_mno;
  cellnet::RatMask two_g{0b001};
  EXPECT_EQ(policy_.evaluate(world(), 0, uk, uk, cellnet::Rat::kFourG, two_g, all_, true, 0, rng_),
            ResultCode::kFeatureUnsupported);
}

TEST_F(OutcomePolicyTest, SimScopeWithoutRatUnsupported) {
  const auto uk = world().well_known().uk_mno;
  cellnet::RatMask no_lte{0b011};
  EXPECT_EQ(policy_.evaluate(world(), 0, uk, uk, cellnet::Rat::kFourG, all_, no_lte, true, 0, rng_),
            ResultCode::kFeatureUnsupported);
}

TEST_F(OutcomePolicyTest, VisitedWithoutRatUnsupported) {
  // Japanese MNOs retired 2G in the world model.
  const auto& wk = world().well_known();
  const auto jp = world().operators().mnos_in_country("JP").front();
  EXPECT_EQ(policy_.evaluate(world(), 0, wk.es_hmno, jp, cellnet::Rat::kTwoG, all_, all_,
                             true, 0, rng_),
            ResultCode::kFeatureUnsupported);
}

TEST_F(OutcomePolicyTest, DeadSubscriptionUnknown) {
  const auto uk = world().well_known().uk_mno;
  EXPECT_EQ(policy_.evaluate(world(), 0, uk, uk, cellnet::Rat::kFourG, all_, all_, false, 0, rng_),
            ResultCode::kUnknownSubscription);
}

TEST_F(OutcomePolicyTest, RoamingViaHubAllowed) {
  const auto& wk = world().well_known();
  const auto gb = world().operators().mnos_in_country("GB").front();
  EXPECT_EQ(policy_.evaluate(world(), 0, wk.es_hmno, gb, cellnet::Rat::kFourG, all_, all_,
                             true, 0, rng_),
            ResultCode::kOk);
}

TEST_F(OutcomePolicyTest, NationalRoamingWithoutAgreementRejected) {
  // Two UK MNOs have no bilateral agreement and live in the same hub? The
  // hub gives them a path; construct a bare world instead.
  topology::OperatorRegistry registry;
  (void)registry;
  // Simpler: a UK MVNO's SIM on a *different* UK MNO than its host must be
  // checked against the commercial graph. GB MNOs share the m2m hub, so it
  // resolves; assert only that the call completes with a definite verdict.
  const auto& wk = world().well_known();
  const auto other_gb = world().operators().mnos_in_country("GB")[1];
  const auto verdict = policy_.evaluate(world(), 0, wk.uk_mvnos.front(), other_gb,
                                        cellnet::Rat::kThreeG, all_, all_, true, 0, rng_);
  EXPECT_TRUE(verdict == ResultCode::kOk || verdict == ResultCode::kRoamingNotAllowed);
}

TEST_F(OutcomePolicyTest, TransientFailureRateApplies) {
  OutcomePolicy flaky{OutcomePolicyConfig{.transient_failure_rate = 1.0}};
  const auto uk = world().well_known().uk_mno;
  EXPECT_EQ(flaky.evaluate(world(), 0, uk, uk, cellnet::Rat::kFourG, all_, all_, true, 0, rng_),
            ResultCode::kNetworkFailure);
}

TEST(PlatformFilter, CapturesOnly4GPlatformProcedures) {
  SignalingTransaction txn;
  txn.rat = cellnet::Rat::kFourG;
  txn.procedure = Procedure::kUpdateLocation;
  EXPECT_TRUE(records::platform_probe_captures(txn));

  txn.procedure = Procedure::kTrackingAreaUpdate;
  EXPECT_FALSE(records::platform_probe_captures(txn));

  txn.procedure = Procedure::kAuthentication;
  txn.rat = cellnet::Rat::kThreeG;
  EXPECT_FALSE(records::platform_probe_captures(txn));
}

TEST(PlatformFilter, FiltersStream) {
  std::vector<SignalingTransaction> stream(3);
  stream[0].rat = cellnet::Rat::kFourG;
  stream[0].procedure = Procedure::kAuthentication;
  stream[1].rat = cellnet::Rat::kTwoG;
  stream[1].procedure = Procedure::kAuthentication;
  stream[2].rat = cellnet::Rat::kFourG;
  stream[2].procedure = Procedure::kAttach;
  EXPECT_EQ(records::platform_view(stream).size(), 1u);
}

TEST(Transaction, CsvProjection) {
  SignalingTransaction txn;
  txn.device = 42;
  txn.time = 7;
  txn.sim_plmn = cellnet::Plmn{214, 7, 2};
  txn.visited_plmn = cellnet::Plmn{234, 10, 2};
  txn.procedure = Procedure::kAuthentication;
  txn.result = ResultCode::kOk;
  txn.rat = cellnet::Rat::kFourG;
  txn.tac = 35'000'001;
  const auto fields = to_csv_fields(txn);
  const auto header = csv_header();
  ASSERT_EQ(fields.size(), header.size());
  EXPECT_EQ(fields[2], "214-07");
  EXPECT_EQ(fields[4], "Authentication");
  EXPECT_EQ(fields[5], "OK");
  EXPECT_EQ(fields[6], "4G");
}

}  // namespace
}  // namespace wtr::signaling
