#include "io/table.hpp"

#include <gtest/gtest.h>

namespace wtr::io {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table table{{"name", "value"}};
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const auto out = table.render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, PadsShortRows) {
  Table table{{"a", "b", "c"}};
  table.add_row({"only"});
  EXPECT_NE(table.render().find("only"), std::string::npos);
}

TEST(Table, LinesHaveEqualWidth) {
  Table table{{"col", "x"}};
  table.add_row({"value", "1"});
  table.add_row({"longer value", "100"});
  const auto out = table.render();
  std::size_t width = 0;
  std::size_t start = 0;
  while (start < out.size()) {
    const auto end = out.find('\n', start);
    const auto line = out.substr(start, end - start);
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
    start = end + 1;
  }
}

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.5), "50.0%");
  EXPECT_EQ(format_percent(0.123, 2), "12.30%");
  EXPECT_EQ(format_percent(0.0, 0), "0%");
}

TEST(Format, Fixed) {
  EXPECT_EQ(format_fixed(1.23456), "1.23");
  EXPECT_EQ(format_fixed(1.5, 0), "2");
}

TEST(Format, CountWithSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(100000), "100,000");
}

TEST(Format, Banner) {
  const auto banner = figure_banner("Fig. 2", "footprint");
  EXPECT_NE(banner.find("Fig. 2"), std::string::npos);
  EXPECT_NE(banner.find("footprint"), std::string::npos);
  EXPECT_NE(banner.find("="), std::string::npos);
}

}  // namespace
}  // namespace wtr::io
