// Determinism and cross-scenario invariants: identical seeds must replay
// identical traces; different seeds must not.

#include <gtest/gtest.h>

#include "core/catalog_builder.hpp"
#include "core/platform_analysis.hpp"
#include "tracegen/m2m_platform_scenario.hpp"
#include "tracegen/mno_scenario.hpp"
#include "tracegen/smip_scenario.hpp"

namespace wtr {
namespace {

struct TraceDigest {
  std::uint64_t signaling = 0;
  std::uint64_t hash = 0;
  std::uint64_t cdrs = 0;
  std::uint64_t xdrs = 0;

  friend bool operator==(const TraceDigest&, const TraceDigest&) = default;
};

class DigestSink final : public sim::RecordSink {
 public:
  TraceDigest digest;

  void on_signaling(const signaling::SignalingTransaction& txn, bool) override {
    ++digest.signaling;
    digest.hash = stats::mix64(digest.hash,
                               stats::mix64(txn.device ^ static_cast<std::uint64_t>(txn.time),
                                            txn.visited_plmn.key() ^
                                                static_cast<std::uint64_t>(txn.result)));
  }
  void on_cdr(const records::Cdr&) override { ++digest.cdrs; }
  void on_xdr(const records::Xdr&) override { ++digest.xdrs; }
};

TraceDigest run_mno(std::uint64_t seed) {
  tracegen::MnoScenarioConfig config;
  config.seed = seed;
  config.total_devices = 800;
  config.build_coverage = false;  // faster; determinism is what we test
  tracegen::MnoScenario scenario{config};
  DigestSink sink;
  scenario.run({&sink});
  return sink.digest;
}

TEST(Determinism, MnoScenarioReplays) {
  EXPECT_EQ(run_mno(42), run_mno(42));
}

TEST(Determinism, MnoScenarioSeedSensitivity) {
  EXPECT_NE(run_mno(42).hash, run_mno(43).hash);
}

TraceDigest run_platform(std::uint64_t seed) {
  tracegen::M2MPlatformConfig config;
  config.seed = seed;
  config.total_devices = 800;
  tracegen::M2MPlatformScenario scenario{config};
  DigestSink sink;
  scenario.run({&sink});
  return sink.digest;
}

TEST(Determinism, PlatformScenarioReplays) {
  EXPECT_EQ(run_platform(7), run_platform(7));
}

TEST(Determinism, PlatformSeedSensitivity) {
  EXPECT_NE(run_platform(7).hash, run_platform(8).hash);
}

TEST(Determinism, SmipScenarioReplays) {
  auto run = [](std::uint64_t seed) {
    tracegen::SmipScenarioConfig config;
    config.seed = seed;
    config.total_devices = 600;
    config.build_coverage = false;
    tracegen::SmipScenario scenario{config};
    DigestSink sink;
    scenario.run({&sink});
    return sink.digest;
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(9).hash, run(10).hash);
}

TEST(ScenarioInvariants, GroundTruthCoversAllDevices) {
  tracegen::MnoScenarioConfig config;
  config.total_devices = 500;
  config.build_coverage = false;
  tracegen::MnoScenario scenario{config};
  EXPECT_EQ(scenario.ground_truth().size(), scenario.device_count());
  for (const auto& [device, entry] : scenario.ground_truth()) {
    EXPECT_NE(device, 0u);
    EXPECT_NE(entry.home_operator, topology::kInvalidOperator);
  }
}

TEST(ScenarioInvariants, PlatformDevicesAreAllM2M) {
  tracegen::M2MPlatformConfig config;
  config.total_devices = 500;
  tracegen::M2MPlatformScenario scenario{config};
  for (const auto& [_, entry] : scenario.ground_truth()) {
    EXPECT_EQ(entry.device_class, devices::DeviceClass::kM2M);
  }
}

TEST(ScenarioInvariants, SmipMembershipPartitions) {
  tracegen::SmipScenarioConfig config;
  config.total_devices = 400;
  config.build_coverage = false;
  tracegen::SmipScenario scenario{config};
  EXPECT_EQ(scenario.native_meters().size() + scenario.roaming_meters().size(),
            scenario.device_count());
  for (const auto hash : scenario.native_meters()) {
    EXPECT_FALSE(scenario.roaming_meters().contains(hash));
  }
}

TEST(ScenarioInvariants, MultipleSinksSeeSameStream) {
  tracegen::MnoScenarioConfig config;
  config.total_devices = 300;
  config.build_coverage = false;
  tracegen::MnoScenario scenario{config};
  DigestSink a;
  DigestSink b;
  scenario.run({&a, &b});
  EXPECT_EQ(a.digest, b.digest);
}

TEST(ScenarioInvariants, ScaleChangesDeviceCountRoughlyLinearly) {
  tracegen::MnoScenarioConfig small;
  small.total_devices = 400;
  small.build_coverage = false;
  tracegen::MnoScenarioConfig big = small;
  big.total_devices = 800;
  const tracegen::MnoScenario s{small};
  const tracegen::MnoScenario b{big};
  const double ratio =
      static_cast<double>(b.device_count()) / static_cast<double>(s.device_count());
  EXPECT_NEAR(ratio, 2.0, 0.4);
}

}  // namespace
}  // namespace wtr
