#include "core/platform_analysis.hpp"

#include <gtest/gtest.h>

namespace wtr::core {
namespace {

const cellnet::Plmn kEs{214, 7, 2};
const cellnet::Plmn kMx{334, 20, 2};
const cellnet::Plmn kGb{234, 1, 2};
const cellnet::Plmn kFr{208, 1, 2};

signaling::SignalingTransaction txn(signaling::DeviceHash device, cellnet::Plmn sim,
                                    cellnet::Plmn visited,
                                    signaling::ResultCode result = signaling::ResultCode::kOk,
                                    cellnet::Rat rat = cellnet::Rat::kFourG,
                                    signaling::Procedure procedure =
                                        signaling::Procedure::kUpdateLocation) {
  signaling::SignalingTransaction t;
  t.device = device;
  t.sim_plmn = sim;
  t.visited_plmn = visited;
  t.result = result;
  t.rat = rat;
  t.procedure = procedure;
  return t;
}

PlatformTraceAccumulator make_acc() {
  return PlatformTraceAccumulator{{{kEs, kMx}}};
}

TEST(PlatformAccumulator, FiltersNonPlatformTraffic) {
  auto acc = make_acc();
  acc.on_signaling(txn(1, kEs, kGb), true);                                  // kept
  acc.on_signaling(txn(2, kGb, kGb), true);                                  // not an HMNO SIM
  acc.on_signaling(txn(3, kEs, kGb, signaling::ResultCode::kOk,
                       cellnet::Rat::kTwoG), true);                          // not 4G
  acc.on_signaling(txn(4, kEs, kGb, signaling::ResultCode::kOk, cellnet::Rat::kFourG,
                       signaling::Procedure::kTrackingAreaUpdate), true);    // not probed
  EXPECT_EQ(acc.captured_records(), 1u);
}

TEST(PlatformAccumulator, PerHmnoShares) {
  auto acc = make_acc();
  acc.on_signaling(txn(1, kEs, kGb), true);
  acc.on_signaling(txn(2, kEs, kFr), true);
  acc.on_signaling(txn(3, kMx, kMx), true);
  const auto stats = acc.finalize();
  EXPECT_EQ(stats.total_devices, 3u);
  EXPECT_EQ(stats.total_records, 3u);
  ASSERT_EQ(stats.per_hmno.size(), 2u);
  EXPECT_EQ(stats.per_hmno[0].home_iso, "ES");  // more devices
  EXPECT_EQ(stats.per_hmno[0].devices, 2u);
  EXPECT_DOUBLE_EQ(stats.per_hmno[0].device_share(stats.total_devices), 2.0 / 3.0);
}

TEST(PlatformAccumulator, RoamingVsNative) {
  auto acc = make_acc();
  acc.on_signaling(txn(1, kEs, kGb), true);  // ES SIM on GB network: roaming
  acc.on_signaling(txn(2, kEs, kEs), true);  // ES SIM at home
  const auto stats = acc.finalize();
  EXPECT_EQ(stats.records_roaming.size(), 1u);
  EXPECT_EQ(stats.records_native.size(), 1u);
  EXPECT_DOUBLE_EQ(stats.es_nonroaming_device_share, 0.5);
}

TEST(PlatformAccumulator, VmnoCountsAndSwitches) {
  auto acc = make_acc();
  // Device 1 bounces GB → FR → GB: 3 VMNO switches... 2 switches, 2 VMNOs.
  acc.on_signaling(txn(1, kEs, kGb), true);
  acc.on_signaling(txn(1, kEs, kFr), true);
  acc.on_signaling(txn(1, kEs, kGb), true);
  // Device 2 stays on one VMNO.
  acc.on_signaling(txn(2, kEs, kGb), true);
  acc.on_signaling(txn(2, kEs, kGb), true);
  const auto stats = acc.finalize();
  // Only roaming devices feed the VMNO ECDF.
  EXPECT_EQ(stats.vmnos_per_roaming_device.size(), 2u);
  EXPECT_DOUBLE_EQ(stats.vmnos_per_roaming_device.max(), 2.0);
  // Multi-VMNO devices: one, with 2 switches.
  EXPECT_EQ(stats.switches_multi_vmno.size(), 1u);
  EXPECT_DOUBLE_EQ(stats.switches_multi_vmno.max(), 2.0);
  EXPECT_DOUBLE_EQ(stats.share_multi_vmno_devices, 0.5);
}

TEST(PlatformAccumulator, FailureSplit) {
  auto acc = make_acc();
  acc.on_signaling(txn(1, kEs, kGb, signaling::ResultCode::kRoamingNotAllowed), true);
  acc.on_signaling(txn(1, kEs, kFr, signaling::ResultCode::kFeatureUnsupported), true);
  acc.on_signaling(txn(2, kEs, kGb), true);
  const auto stats = acc.finalize();
  EXPECT_DOUBLE_EQ(stats.fraction_failed_only, 0.5);
  EXPECT_DOUBLE_EQ(stats.fraction_any_success, 0.5);
  EXPECT_EQ(stats.max_vmnos_failed_only, 2u);
  EXPECT_EQ(stats.records_4g_ok.size(), 1u);
}

TEST(PlatformAccumulator, FootprintCountsDeviceCountryIncidence) {
  auto acc = make_acc();
  acc.on_signaling(txn(1, kEs, kGb), true);
  acc.on_signaling(txn(1, kEs, kGb), true);  // same country: once
  acc.on_signaling(txn(1, kEs, kFr), true);
  const auto stats = acc.finalize();
  EXPECT_EQ(stats.footprint.at("ES", "GB"), 1u);
  EXPECT_EQ(stats.footprint.at("ES", "FR"), 1u);
  EXPECT_EQ(stats.footprint.row_total("ES"), 2u);
}

TEST(PlatformAccumulator, EsConcentration) {
  auto acc = make_acc();
  // One heavy device with 8 records in GB, two light ones with 1 each.
  for (int i = 0; i < 8; ++i) acc.on_signaling(txn(1, kEs, kGb), true);
  acc.on_signaling(txn(2, kEs, kFr), true);
  acc.on_signaling(txn(3, kEs, kFr), true);
  const auto stats = acc.finalize();
  // 75% of 10 records = 7.5 → the single heavy device (1/3 of devices).
  EXPECT_NEAR(stats.es_device_share_for_75pct_signaling, 1.0 / 3.0, 1e-9);
  EXPECT_EQ(stats.es_heavy_countries, 1u);
  EXPECT_EQ(stats.es_heavy_vmnos, 1u);
  EXPECT_DOUBLE_EQ(stats.es_signaling_share, 1.0);
}

TEST(PlatformAccumulator, EmptyFinalize) {
  auto acc = make_acc();
  const auto stats = acc.finalize();
  EXPECT_EQ(stats.total_devices, 0u);
  EXPECT_DOUBLE_EQ(stats.fraction_failed_only, 0.0);
}

}  // namespace
}  // namespace wtr::core
