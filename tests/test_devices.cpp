#include <gtest/gtest.h>

#include <set>

#include "devices/fleet_builder.hpp"
#include "devices/verticals.hpp"

namespace wtr::devices {
namespace {

class FleetBuilderTest : public ::testing::Test {
 protected:
  static const topology::World& world() {
    static const topology::World w = [] {
      topology::WorldConfig config;
      config.build_coverage = false;
      return topology::World::build(config);
    }();
    return w;
  }
  static const cellnet::TacPools& pools() {
    static const cellnet::TacPools p{cellnet::TacPools::Config{.seed = 3}};
    return p;
  }

  FleetSpec base_spec(std::size_t count) const {
    FleetSpec spec;
    spec.count = count;
    spec.home_operator = world().well_known().uk_mno;
    spec.profile = smartphone_profile();
    spec.deployment_iso = "GB";
    spec.horizon_days = 22;
    return spec;
  }
};

TEST_F(FleetBuilderTest, BuildsRequestedCount) {
  FleetBuilder builder{world(), pools(), 1};
  const auto fleet = builder.build(base_spec(100));
  EXPECT_EQ(fleet.size(), 100u);
  EXPECT_EQ(builder.devices_built(), 100u);
}

TEST_F(FleetBuilderTest, UniqueIdsAndImsisAcrossFleets) {
  FleetBuilder builder{world(), pools(), 2};
  const auto a = builder.build(base_spec(200));
  const auto b = builder.build(base_spec(200));
  std::set<signaling::DeviceHash> ids;
  std::set<std::string> imsis;
  for (const auto* fleet : {&a, &b}) {
    for (const auto& device : *fleet) {
      EXPECT_TRUE(ids.insert(device.id).second);
      EXPECT_TRUE(imsis.insert(device.imsi.to_string()).second);
    }
  }
}

TEST_F(FleetBuilderTest, DeterministicForSeed) {
  FleetBuilder a{world(), pools(), 7};
  FleetBuilder b{world(), pools(), 7};
  const auto fa = a.build(base_spec(50));
  const auto fb = b.build(base_spec(50));
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].id, fb[i].id);
    EXPECT_EQ(fa[i].imei, fb[i].imei);
    EXPECT_DOUBLE_EQ(fa[i].sessions_per_day, fb[i].sessions_per_day);
  }
}

TEST_F(FleetBuilderTest, ImsiRangeHonored) {
  FleetBuilder builder{world(), pools(), 3};
  auto spec = base_spec(50);
  const auto plmn = world().operators().get(spec.home_operator).plmn;
  spec.imsi_range = cellnet::ImsiRange{plmn, 1'000, 2'000};
  const auto fleet = builder.build(spec);
  for (const auto& device : fleet) {
    EXPECT_TRUE(spec.imsi_range->contains(device.imsi));
  }
}

TEST_F(FleetBuilderTest, VendorRestrictionHonored) {
  FleetBuilder builder{world(), pools(), 4};
  auto spec = base_spec(80);
  spec.profile = m2m_profile(Vertical::kSmartMeter);
  spec.restrict_vendors = {"Gemalto", "Telit"};
  const auto fleet = builder.build(spec);
  for (const auto& device : fleet) {
    const auto* info = pools().catalog().lookup(device.imei.tac());
    ASSERT_NE(info, nullptr);
    EXPECT_TRUE(info->vendor == "Gemalto" || info->vendor == "Telit") << info->vendor;
  }
}

TEST_F(FleetBuilderTest, CapBandsRestrictsHardware) {
  FleetBuilder builder{world(), pools(), 5};
  auto spec = base_spec(60);
  spec.profile = m2m_profile(Vertical::kSmartMeter);
  spec.cap_bands = cellnet::RatMask{0b001};
  const auto fleet = builder.build(spec);
  for (const auto& device : fleet) {
    EXPECT_TRUE(device.capability.only(cellnet::Rat::kTwoG));
  }
}

TEST_F(FleetBuilderTest, ForceBandsAddsCapability) {
  FleetBuilder builder{world(), pools(), 6};
  auto spec = base_spec(60);
  spec.profile = m2m_profile(Vertical::kVendingMachine);
  spec.force_bands = cellnet::RatMask{0b100};
  const auto fleet = builder.build(spec);
  for (const auto& device : fleet) {
    EXPECT_TRUE(device.capability.has(cellnet::Rat::kFourG));
  }
}

TEST_F(FleetBuilderTest, LteSimDisabledRate) {
  FleetBuilder builder{world(), pools(), 7};
  auto spec = base_spec(2'000);
  spec.lte_sim_disabled_rate = 0.5;
  const auto fleet = builder.build(spec);
  std::size_t disabled = 0;
  for (const auto& device : fleet) {
    if (!device.sim_allowed_rats.has(cellnet::Rat::kFourG)) ++disabled;
  }
  EXPECT_NEAR(static_cast<double>(disabled) / fleet.size(), 0.5, 0.06);
}

TEST_F(FleetBuilderTest, NoDataDevicesHaveNoApn) {
  FleetBuilder builder{world(), pools(), 8};
  auto spec = base_spec(300);
  spec.profile.p_no_data = 1.0;
  spec.apn_policy = ApnPolicy::kConsumer;
  const auto fleet = builder.build(spec);
  for (const auto& device : fleet) {
    EXPECT_FALSE(device.uses_data());
    EXPECT_TRUE(device.apn.empty());
  }
}

TEST_F(FleetBuilderTest, VerticalApnsCarryCompanyDomains) {
  FleetBuilder builder{world(), pools(), 9};
  auto spec = base_spec(200);
  spec.profile = m2m_profile(Vertical::kSmartMeter);
  spec.profile.p_no_data = 0.0;
  spec.apn_policy = ApnPolicy::kVerticalCompany;
  const auto fleet = builder.build(spec);
  std::size_t with_energy_domain = 0;
  for (const auto& device : fleet) {
    ASSERT_FALSE(device.apn.empty());
    for (const auto& company : companies_of(Vertical::kSmartMeter)) {
      if (device.apn.network_id().find(company.domain) != std::string::npos) {
        ++with_energy_domain;
        break;
      }
    }
  }
  EXPECT_EQ(with_energy_domain, fleet.size());
}

TEST_F(FleetBuilderTest, PresenceWindowsWithinHorizon) {
  FleetBuilder builder{world(), pools(), 10};
  auto spec = base_spec(500);
  spec.profile.p_full_period = 0.3;
  const auto fleet = builder.build(spec);
  std::size_t full = 0;
  for (const auto& device : fleet) {
    EXPECT_GE(device.arrival_day, 0);
    EXPECT_LE(device.departure_day, spec.horizon_days);
    EXPECT_LT(device.arrival_day, device.departure_day);
    if (device.arrival_day == 0 && device.departure_day == spec.horizon_days) ++full;
  }
  EXPECT_NEAR(static_cast<double>(full) / fleet.size(), 0.3, 0.08);
}

TEST_F(FleetBuilderTest, FillerEquipmentUnknownLabel) {
  FleetBuilder builder{world(), pools(), 11};
  auto spec = base_spec(50);
  spec.use_filler_equipment = true;
  const auto fleet = builder.build(spec);
  for (const auto& device : fleet) {
    const auto* info = pools().catalog().lookup(device.imei.tac());
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->label, cellnet::GsmaLabel::kUnknown);
  }
}

TEST(Profiles, ClassesAndEquipmentConsistent) {
  EXPECT_EQ(smartphone_profile().device_class, DeviceClass::kSmartphone);
  EXPECT_EQ(smartphone_profile().equipment, cellnet::EquipmentCategory::kSmartphone);
  EXPECT_EQ(feature_phone_profile().device_class, DeviceClass::kFeaturePhone);
  for (int v = 1; v < kVerticalCount; ++v) {
    const auto profile = m2m_profile(static_cast<Vertical>(v));
    EXPECT_EQ(profile.device_class, DeviceClass::kM2M);
    EXPECT_EQ(profile.vertical, static_cast<Vertical>(v));
  }
}

TEST(Profiles, M2MIsFlatDiurnalAndPhonesAreNot) {
  EXPECT_LT(smartphone_profile().diurnal_floor, 0.5);
  EXPECT_DOUBLE_EQ(m2m_profile(Vertical::kSmartMeter).diurnal_floor, 1.0);
}

TEST(Profiles, MobilityKindsMatchVerticals) {
  EXPECT_EQ(m2m_profile(Vertical::kSmartMeter).mobility, MobilityKind::kStationary);
  EXPECT_EQ(m2m_profile(Vertical::kConnectedCar).mobility, MobilityKind::kLongHaul);
  EXPECT_EQ(smartphone_profile().mobility, MobilityKind::kLocalCommuter);
}

TEST(Verticals, CompaniesKeywordsSubsetOfDomainsStructure) {
  for (int v = 1; v < kVerticalCount; ++v) {
    const auto companies = companies_of(static_cast<Vertical>(v));
    EXPECT_FALSE(companies.empty()) << vertical_name(static_cast<Vertical>(v));
    for (const auto& company : companies) {
      EXPECT_FALSE(company.domain.empty());
      EXPECT_GT(company.weight, 0.0);
    }
  }
  EXPECT_TRUE(companies_of(Vertical::kNone).empty());
}

TEST(Verticals, SmipEnergyCompaniesAllKeyworded) {
  const auto companies = smip_energy_companies();
  EXPECT_EQ(companies.size(), 5u);  // §4.4 names five energy companies
  for (const auto& company : companies) {
    EXPECT_FALSE(company.keyword.empty());
  }
}

TEST(Verticals, ApnGenerators) {
  stats::Rng rng{1};
  const cellnet::Plmn home{204, 4, 2};
  const auto& company = companies_of(Vertical::kSmartMeter).front();
  const auto apn = make_vertical_apn(company, home, rng);
  EXPECT_NE(apn.network_id().find(company.domain), std::string::npos);
  EXPECT_EQ(apn.operator_id(), home);

  const auto platform = make_platform_apn(home, rng);
  EXPECT_FALSE(platform.empty());

  const auto consumer = make_consumer_apn(home, rng);
  EXPECT_FALSE(consumer.empty());
}

}  // namespace
}  // namespace wtr::devices
