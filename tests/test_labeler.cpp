#include "core/roaming_labeler.hpp"

#include <gtest/gtest.h>

namespace wtr::core {
namespace {

const cellnet::Plmn kObserver{234, 10, 2};
const cellnet::Plmn kMvno{235, 50, 2};
const cellnet::Plmn kNationalRival{234, 30, 2};
const cellnet::Plmn kDutch{204, 4, 2};
const cellnet::Plmn kSpanish{214, 7, 2};

RoamingLabeler make_labeler() { return RoamingLabeler{kObserver, {kMvno}}; }

TEST(RoamingLabeler, SimSides) {
  const auto labeler = make_labeler();
  EXPECT_EQ(labeler.sim_side(kObserver), SimSide::kHome);
  EXPECT_EQ(labeler.sim_side(kMvno), SimSide::kVirtual);
  EXPECT_EQ(labeler.sim_side(kNationalRival), SimSide::kNational);
  EXPECT_EQ(labeler.sim_side(kDutch), SimSide::kInternational);
}

TEST(RoamingLabeler, NativeDevice) {
  const auto labeler = make_labeler();
  const std::vector<cellnet::Plmn> visited{kObserver};
  EXPECT_EQ(labeler.label(kObserver, visited), kNativeLabel);
}

TEST(RoamingLabeler, InboundRoamer) {
  const auto labeler = make_labeler();
  const std::vector<cellnet::Plmn> visited{kObserver};
  EXPECT_EQ(labeler.label(kDutch, visited), kInboundRoamerLabel);
  EXPECT_EQ(labeler.label(kSpanish, visited), kInboundRoamerLabel);
}

TEST(RoamingLabeler, OutboundRoamer) {
  const auto labeler = make_labeler();
  const std::vector<cellnet::Plmn> visited{kSpanish};
  const auto label = labeler.label(kObserver, visited);
  EXPECT_EQ(label.sim, SimSide::kHome);
  EXPECT_EQ(label.net, NetSide::kAbroad);
  EXPECT_EQ(roaming_label_name(label), "H:A");
}

TEST(RoamingLabeler, MvnoVariants) {
  const auto labeler = make_labeler();
  EXPECT_EQ(roaming_label_name(labeler.label(kMvno, std::vector{kObserver})), "V:H");
  EXPECT_EQ(roaming_label_name(labeler.label(kMvno, std::vector{kDutch})), "V:A");
}

TEST(RoamingLabeler, NationalRoamerOnObserver) {
  const auto labeler = make_labeler();
  EXPECT_EQ(roaming_label_name(labeler.label(kNationalRival, std::vector{kObserver})),
            "N:H");
}

TEST(RoamingLabeler, MixedVisitedCountsAsHome) {
  // A day spanning the observer's network and a foreign one: Y = H.
  const auto labeler = make_labeler();
  const std::vector<cellnet::Plmn> visited{kSpanish, kObserver};
  EXPECT_EQ(labeler.label(kObserver, visited).net, NetSide::kHome);
}

TEST(RoamingLabeler, EmptyVisitedIsAbroad) {
  const auto labeler = make_labeler();
  EXPECT_EQ(labeler.label(kObserver, {}).net, NetSide::kAbroad);
}

TEST(RoamingLabeler, ObservableLabelsAreSixAndNamed) {
  const auto labels = observable_labels();
  ASSERT_EQ(labels.size(), 6u);
  EXPECT_EQ(roaming_label_name(labels[0]), "H:H");
  EXPECT_EQ(roaming_label_name(labels[1]), "V:H");
  EXPECT_EQ(roaming_label_name(labels[2]), "N:H");
  EXPECT_EQ(roaming_label_name(labels[3]), "I:H");
  EXPECT_EQ(roaming_label_name(labels[4]), "H:A");
  EXPECT_EQ(roaming_label_name(labels[5]), "V:A");
}

TEST(RoamingLabeler, AllEightNamesRender) {
  for (auto sim : {SimSide::kHome, SimSide::kVirtual, SimSide::kNational,
                   SimSide::kInternational}) {
    for (auto net : {NetSide::kHome, NetSide::kAbroad}) {
      EXPECT_NE(roaming_label_name(RoamingLabel{sim, net}), "?");
    }
  }
}

}  // namespace
}  // namespace wtr::core
