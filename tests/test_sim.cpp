#include <cmath>
#include <gtest/gtest.h>

#include "devices/fleet_builder.hpp"
#include "sim/engine.hpp"

namespace wtr::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue queue;
  queue.schedule(30, 1);
  queue.schedule(10, 2);
  queue.schedule(20, 3);
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.next_time(), 10);
  EXPECT_EQ(queue.pop().agent, 2u);
  EXPECT_EQ(queue.pop().agent, 3u);
  EXPECT_EQ(queue.pop().agent, 1u);
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.next_time().has_value());
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue queue;
  queue.schedule(5, 10);
  queue.schedule(5, 20);
  queue.schedule(5, 30);
  EXPECT_EQ(queue.pop().agent, 10u);
  EXPECT_EQ(queue.pop().agent, 20u);
  EXPECT_EQ(queue.pop().agent, 30u);
}

devices::Device make_device(devices::MobilityKind mobility) {
  devices::Device device;
  device.profile.mobility = mobility;
  device.profile.commute_radius_m = 5'000.0;
  device.profile.stationary_jitter_m = 200.0;
  device.profile.p_cross_country_trip = 1.0;  // certain, for trip tests
  device.home_country = "GB";
  device.current_country = "GB";
  device.home_east_m = 1'000.0;
  device.home_north_m = -500.0;
  device.east_m = 1'000.0;
  device.north_m = -500.0;
  return device;
}

TEST(Mobility, StationaryStaysNearHome) {
  auto device = make_device(devices::MobilityKind::kStationary);
  stats::Rng rng{1};
  for (int i = 0; i < 200; ++i) {
    advance_position(device, 3'600.0, {}, rng);
    const double dx = device.east_m - device.home_east_m;
    const double dy = device.north_m - device.home_north_m;
    EXPECT_LT(std::sqrt(dx * dx + dy * dy), 200.0 * 6);
    EXPECT_EQ(device.current_country, "GB");
  }
}

TEST(Mobility, CommuterStaysInCommuteDisc) {
  auto device = make_device(devices::MobilityKind::kLocalCommuter);
  stats::Rng rng{2};
  for (int i = 0; i < 200; ++i) {
    advance_position(device, 6 * 3'600.0, {}, rng);
    const double dx = device.east_m - device.home_east_m;
    const double dy = device.north_m - device.home_north_m;
    EXPECT_LE(std::sqrt(dx * dx + dy * dy), 5'000.0 + 1.0);
  }
}

TEST(Mobility, LongHaulCrossesBordersOnlyWithCorridor) {
  auto stay = make_device(devices::MobilityKind::kLongHaul);
  stats::Rng rng{3};
  for (int i = 0; i < 50; ++i) advance_position(stay, 86'400.0, {}, rng);
  EXPECT_EQ(stay.current_country, "GB");

  auto go = make_device(devices::MobilityKind::kLongHaul);
  bool crossed = false;
  for (int i = 0; i < 50 && !crossed; ++i) {
    advance_position(go, 86'400.0, {"FR", "BE"}, rng);
    crossed = go.current_country != "GB";
  }
  EXPECT_TRUE(crossed);
}

TEST(Mobility, ZeroDtIsNoOp) {
  auto device = make_device(devices::MobilityKind::kLocalCommuter);
  const double east = device.east_m;
  stats::Rng rng{4};
  advance_position(device, 0.0, {}, rng);
  EXPECT_DOUBLE_EQ(device.east_m, east);
}

class SelectionTest : public ::testing::Test {
 protected:
  static const topology::World& world() {
    static const topology::World w = [] {
      topology::WorldConfig config;
      config.build_coverage = false;
      return topology::World::build(config);
    }();
    return w;
  }

  devices::Device roamer(const std::string& country) const {
    devices::Device device;
    device.home_operator = world().well_known().es_hmno;
    device.capability = cellnet::RatMask{0b111};
    device.home_country = "ES";
    device.current_country = country;
    return device;
  }
};

TEST_F(SelectionTest, HomeNetworkFirstAtHome) {
  auto device = roamer("ES");
  device.home_operator = world().operators().mnos_in_country("ES").front();
  stats::Rng rng{1};
  NetworkSelector selector{world()};
  const auto scanned = selector.scan(device, std::nullopt, rng);
  ASSERT_FALSE(scanned.empty());
  EXPECT_TRUE(scanned.front().is_home_network);
  EXPECT_EQ(scanned.front().visited, device.home_operator);
}

TEST_F(SelectionTest, RoamingScanListsLocalMnos) {
  const auto device = roamer("GB");
  stats::Rng rng{2};
  NetworkSelector selector{world()};
  const auto scanned = selector.scan(device, std::nullopt, rng);
  EXPECT_GE(scanned.size(), 3u);
  for (const auto& choice : scanned) {
    EXPECT_EQ(world().operators().get(choice.visited).country_iso, "GB");
    EXPECT_FALSE(choice.is_home_network);
  }
}

TEST_F(SelectionTest, ExclusionRemovesNetwork) {
  const auto device = roamer("GB");
  stats::Rng rng{3};
  NetworkSelector selector{world()};
  const auto all = selector.scan(device, std::nullopt, rng);
  ASSERT_FALSE(all.empty());
  const auto excluded = all.front().visited;
  const auto rest = selector.scan(device, excluded, rng);
  for (const auto& choice : rest) EXPECT_NE(choice.visited, excluded);
}

TEST_F(SelectionTest, RadioRatPrefers4G) {
  const auto device = roamer("GB");
  NetworkSelector selector{world()};
  const auto gb = world().operators().mnos_in_country("GB").front();
  EXPECT_EQ(selector.radio_rat(device, gb), cellnet::Rat::kFourG);
}

TEST_F(SelectionTest, RadioRatRespectsHardware) {
  auto device = roamer("GB");
  device.capability = cellnet::RatMask{0b001};
  NetworkSelector selector{world()};
  const auto gb = world().operators().mnos_in_country("GB").front();
  EXPECT_EQ(selector.radio_rat(device, gb), cellnet::Rat::kTwoG);
}

TEST_F(SelectionTest, RadioRatEmptyWhenNoOverlap) {
  auto device = roamer("JP");  // JP MNOs have no 2G
  device.capability = cellnet::RatMask{0b001};
  NetworkSelector selector{world()};
  const auto jp = world().operators().mnos_in_country("JP").front();
  EXPECT_FALSE(selector.radio_rat(device, jp).has_value());
  stats::Rng rng{4};
  EXPECT_TRUE(selector.scan(device, std::nullopt, rng).empty());
}

TEST_F(SelectionTest, FallbackChainDescends) {
  const auto device = roamer("GB");
  NetworkSelector selector{world()};
  const auto gb = world().operators().mnos_in_country("GB").front();
  EXPECT_EQ(selector.radio_fallback_rat(device, gb, cellnet::Rat::kFourG),
            cellnet::Rat::kThreeG);
  EXPECT_EQ(selector.radio_fallback_rat(device, gb, cellnet::Rat::kThreeG),
            cellnet::Rat::kTwoG);
  EXPECT_FALSE(selector.radio_fallback_rat(device, gb, cellnet::Rat::kTwoG).has_value());
}

TEST_F(SelectionTest, ChooseReturnsAgreementFilteredChoice) {
  const auto device = roamer("GB");
  stats::Rng rng{5};
  NetworkSelector selector{world()};
  const auto choice = selector.choose(device, std::nullopt, rng);
  ASSERT_TRUE(choice.has_value());
  const auto roaming = world().resolve_roaming(device.home_operator, choice->visited);
  EXPECT_NE(roaming.path, topology::RoamingPath::kNone);
}

// --- Engine-level smoke tests with a counting sink.

class CountingSink final : public RecordSink {
 public:
  std::uint64_t signaling = 0;
  std::uint64_t ok_signaling = 0;
  std::uint64_t cdrs = 0;
  std::uint64_t xdrs = 0;
  double dwell_seconds = 0.0;
  std::vector<signaling::SignalingTransaction> transactions;

  void on_signaling(const signaling::SignalingTransaction& txn, bool) override {
    ++signaling;
    if (!signaling::is_failure(txn.result)) ++ok_signaling;
    if (transactions.size() < 100'000) transactions.push_back(txn);
  }
  void on_cdr(const records::Cdr&) override { ++cdrs; }
  void on_xdr(const records::Xdr&) override { ++xdrs; }
  void on_dwell(signaling::DeviceHash, std::int32_t, cellnet::Plmn,
                const cellnet::GeoPoint&, double seconds) override {
    dwell_seconds += seconds;
  }
};

class EngineTest : public ::testing::Test {
 protected:
  static const topology::World& world() {
    static const topology::World w = [] {
      topology::WorldConfig config;
      config.build_coverage = true;
      return topology::World::build(config);
    }();
    return w;
  }
  static const cellnet::TacPools& pools() {
    static const cellnet::TacPools p{cellnet::TacPools::Config{.seed = 5}};
    return p;
  }
};

TEST_F(EngineTest, NativeFleetGeneratesAllRecordTypes) {
  Engine engine{world(), Engine::Config{.seed = 1, .horizon_days = 5}};
  devices::FleetBuilder builder{world(), pools(), 1};
  devices::FleetSpec spec;
  spec.count = 100;
  spec.home_operator = world().well_known().uk_mno;
  spec.profile = devices::smartphone_profile();
  spec.deployment_iso = "GB";
  spec.horizon_days = 5;
  engine.add_fleet(builder.build(spec), AgentOptions{});

  CountingSink sink;
  engine.run({&sink});
  EXPECT_GT(engine.wakes_processed(), 500u);
  EXPECT_GT(sink.signaling, 500u);
  EXPECT_GT(sink.ok_signaling, 0u);
  EXPECT_GT(sink.cdrs, 0u);
  EXPECT_GT(sink.xdrs, 0u);
  EXPECT_GT(sink.dwell_seconds, 0.0);
}

TEST_F(EngineTest, DeterministicAcrossRuns) {
  auto run_once = [&] {
    Engine engine{world(), Engine::Config{.seed = 9, .horizon_days = 4}};
    devices::FleetBuilder builder{world(), pools(), 9};
    devices::FleetSpec spec;
    spec.count = 60;
    spec.home_operator = world().well_known().uk_mno;
    spec.profile = devices::smartphone_profile();
    spec.deployment_iso = "GB";
    spec.horizon_days = 4;
    engine.add_fleet(builder.build(spec), AgentOptions{});
    CountingSink sink;
    engine.run({&sink});
    return std::tuple{engine.wakes_processed(), sink.signaling, sink.cdrs, sink.xdrs,
                      sink.dwell_seconds};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(EngineTest, DeadSubscriptionsOnlyFail) {
  Engine engine{world(), Engine::Config{.seed = 2, .horizon_days = 3}};
  devices::FleetBuilder builder{world(), pools(), 2};
  devices::FleetSpec spec;
  spec.count = 20;
  spec.home_operator = world().well_known().uk_mno;
  spec.profile = devices::m2m_profile(devices::Vertical::kSmartMeter);
  spec.deployment_iso = "GB";
  spec.horizon_days = 3;
  spec.subscription_ok_rate = 0.0;
  engine.add_fleet(builder.build(spec), AgentOptions{});
  CountingSink sink;
  engine.run({&sink});
  EXPECT_GT(sink.signaling, 0u);
  EXPECT_EQ(sink.ok_signaling, 0u);  // every procedure rejected
  EXPECT_EQ(sink.cdrs, 0u);          // never attached → no usage
  EXPECT_EQ(sink.xdrs, 0u);
}

TEST_F(EngineTest, RecordsStayWithinHorizonAndWindows) {
  Engine engine{world(), Engine::Config{.seed = 3, .horizon_days = 6}};
  devices::FleetBuilder builder{world(), pools(), 3};
  devices::FleetSpec spec;
  spec.count = 50;
  spec.home_operator = world().well_known().uk_mno;
  spec.profile = devices::m2m_profile(devices::Vertical::kPosTerminal);
  spec.deployment_iso = "GB";
  spec.horizon_days = 6;
  engine.add_fleet(builder.build(spec), AgentOptions{});
  CountingSink sink;
  engine.run({&sink});
  for (const auto& txn : sink.transactions) {
    EXPECT_GE(txn.time, 0);
    EXPECT_LE(txn.time, stats::day_start(6));
    EXPECT_NE(txn.tac, 0u);
  }
}

TEST_F(EngineTest, RunTwiceThrows) {
  Engine engine{world(), Engine::Config{.seed = 6, .horizon_days = 1}};
  devices::FleetBuilder builder{world(), pools(), 6};
  devices::FleetSpec spec;
  spec.count = 5;
  spec.home_operator = world().well_known().uk_mno;
  spec.profile = devices::smartphone_profile();
  spec.deployment_iso = "GB";
  spec.horizon_days = 1;
  engine.add_fleet(builder.build(spec), AgentOptions{});
  CountingSink sink;
  engine.run({&sink});
  // A second run would silently continue from drained state and emit
  // nothing — surfacing that as a logic error is the whole point.
  EXPECT_THROW(engine.run({&sink}), std::logic_error);
}

TEST(MultiSinkTest, RejectsNullSink) {
  MultiSink fanout;
  EXPECT_THROW(fanout.add(nullptr), std::invalid_argument);
  CountingSink sink;
  fanout.add(&sink);  // non-null still fine
  fanout.on_cdr(records::Cdr{});
  EXPECT_EQ(sink.cdrs, 1u);
}

TEST_F(EngineTest, RoamersUseVisitedCountryNetworks) {
  Engine engine{world(), Engine::Config{.seed = 4, .horizon_days = 4}};
  devices::FleetBuilder builder{world(), pools(), 4};
  devices::FleetSpec spec;
  spec.count = 40;
  spec.home_operator = world().well_known().nl_iot_provisioner;
  spec.profile = devices::m2m_profile(devices::Vertical::kSmartMeter);
  spec.deployment_iso = "GB";
  spec.horizon_days = 4;
  engine.add_fleet(builder.build(spec), AgentOptions{});
  CountingSink sink;
  engine.run({&sink});
  ASSERT_GT(sink.transactions.size(), 0u);
  for (const auto& txn : sink.transactions) {
    EXPECT_EQ(txn.sim_plmn, (cellnet::Plmn{204, 4, 2}));
    EXPECT_EQ(txn.visited_plmn.mcc(), 234);  // a GB network
  }
}

}  // namespace
}  // namespace wtr::sim
