#include "core/classifier.hpp"

#include <gtest/gtest.h>

#include "devices/verticals.hpp"

namespace wtr::core {
namespace {

class ClassifierTest : public ::testing::Test {
 protected:
  ClassifierTest() {
    // A minimal hand-built catalog: one smartphone TAC, one feature TAC,
    // two module TACs, one unknown-OEM TAC.
    catalog_.add({.tac = 100,
                  .vendor = "Samsung",
                  .model = "S1",
                  .os = cellnet::DeviceOs::kAndroid,
                  .label = cellnet::GsmaLabel::kSmartphone,
                  .bands = cellnet::RatMask{0b111}});
    catalog_.add({.tac = 200,
                  .vendor = "Nokia",
                  .model = "F1",
                  .os = cellnet::DeviceOs::kProprietary,
                  .label = cellnet::GsmaLabel::kFeaturePhone,
                  .bands = cellnet::RatMask{0b001}});
    catalog_.add({.tac = 300,
                  .vendor = "Gemalto",
                  .model = "M1",
                  .os = cellnet::DeviceOs::kProprietary,
                  .label = cellnet::GsmaLabel::kModule,
                  .bands = cellnet::RatMask{0b001}});
    catalog_.add({.tac = 301,
                  .vendor = "Telit",
                  .model = "M2",
                  .os = cellnet::DeviceOs::kNone,
                  .label = cellnet::GsmaLabel::kModem,
                  .bands = cellnet::RatMask{0b011}});
    catalog_.add({.tac = 400,
                  .vendor = "OEM-0001",
                  .model = "X",
                  .os = cellnet::DeviceOs::kProprietary,
                  .label = cellnet::GsmaLabel::kUnknown,
                  .bands = cellnet::RatMask{0b001}});
  }

  static DeviceSummary device(signaling::DeviceHash id, cellnet::Tac tac,
                              std::vector<std::string> apns) {
    DeviceSummary summary;
    summary.device = id;
    summary.tac = tac;
    summary.apns = std::move(apns);
    return summary;
  }

  cellnet::TacCatalog catalog_;
};

TEST_F(ClassifierTest, KeywordApnMakesM2M) {
  const DeviceClassifier classifier{catalog_};
  const std::vector<DeviceSummary> devices{
      device(1, 300, {"smhp.centricaplc.com.mnc004.mcc204.gprs"})};
  const auto result = classifier.classify(devices);
  EXPECT_EQ(result.labels[0], ClassLabel::kM2M);
  EXPECT_EQ(result.validated_m2m_apns, 1u);
  EXPECT_EQ(result.m2m_by_apn, 1u);
}

TEST_F(ClassifierTest, PropagationCatchesApnlessSiblings) {
  const DeviceClassifier classifier{catalog_};
  const std::vector<DeviceSummary> devices{
      device(1, 300, {"telemetry.rwe.com.mnc004.mcc204.gprs"}),
      device(2, 300, {}),  // same equipment, no APN (voice-only)
  };
  const auto result = classifier.classify(devices);
  EXPECT_EQ(result.labels[0], ClassLabel::kM2M);
  EXPECT_EQ(result.labels[1], ClassLabel::kM2M);
  EXPECT_EQ(result.m2m_by_propagation, 1u);
  EXPECT_EQ(result.devices_without_apn, 1u);
}

TEST_F(ClassifierTest, PropagationCanBeDisabled) {
  ClassifierConfig config;
  config.propagate_device_properties = false;
  DeviceClassifier classifier{catalog_, config};
  const std::vector<DeviceSummary> devices{
      device(1, 300, {"telemetry.rwe.com"}),
      device(2, 300, {}),
  };
  const auto result = classifier.classify(devices);
  EXPECT_EQ(result.labels[0], ClassLabel::kM2M);
  EXPECT_EQ(result.labels[1], ClassLabel::kM2MMaybe);  // no propagation
  EXPECT_EQ(result.m2m_by_propagation, 0u);
}

TEST_F(ClassifierTest, SmartphoneByOs) {
  const DeviceClassifier classifier{catalog_};
  const std::vector<DeviceSummary> devices{device(1, 100, {"internet"})};
  const auto result = classifier.classify(devices);
  EXPECT_EQ(result.labels[0], ClassLabel::kSmart);
}

TEST_F(ClassifierTest, SmartphoneOsWinsEvenWithoutApn) {
  const DeviceClassifier classifier{catalog_};
  const std::vector<DeviceSummary> devices{device(1, 100, {})};
  EXPECT_EQ(classifier.classify(devices).labels[0], ClassLabel::kSmart);
}

TEST_F(ClassifierTest, FeaturePhoneByGsmaLabel) {
  const DeviceClassifier classifier{catalog_};
  const std::vector<DeviceSummary> devices{device(1, 200, {})};
  EXPECT_EQ(classifier.classify(devices).labels[0], ClassLabel::kFeat);
}

TEST_F(ClassifierTest, ConsumerApnWithoutSmartOsIsFeat) {
  const DeviceClassifier classifier{catalog_};
  // Unknown OEM equipment but a consumer APN (e.g. a dongle on payandgo).
  const std::vector<DeviceSummary> devices{device(1, 400, {"payandgo.mobile"})};
  EXPECT_EQ(classifier.classify(devices).labels[0], ClassLabel::kFeat);
}

TEST_F(ClassifierTest, ResidueIsM2MMaybe) {
  const DeviceClassifier classifier{catalog_};
  const std::vector<DeviceSummary> devices{
      device(1, 400, {}),   // unknown OEM, no APN
      device(2, 0, {}),     // no equipment identity at all
  };
  const auto result = classifier.classify(devices);
  EXPECT_EQ(result.labels[0], ClassLabel::kM2MMaybe);
  EXPECT_EQ(result.labels[1], ClassLabel::kM2MMaybe);
}

TEST_F(ClassifierTest, M2MApnBeatsSmartphoneOs) {
  // A connected-car head unit running Android but on a scania APN: the
  // paper's pipeline marks m2m first (stage 2 precedes the OS rule).
  const DeviceClassifier classifier{catalog_};
  const std::vector<DeviceSummary> devices{device(1, 100, {"m2m.scania.com"})};
  EXPECT_EQ(classifier.classify(devices).labels[0], ClassLabel::kM2M);
}

TEST_F(ClassifierTest, ApnInventoryCounts) {
  const DeviceClassifier classifier{catalog_};
  const std::vector<DeviceSummary> devices{
      device(1, 300, {"telemetry.rwe.com", "internet"}),
      device(2, 100, {"payandgo.mobile"}),
      device(3, 400, {"mystery.apn.net"}),
  };
  const auto result = classifier.classify(devices);
  EXPECT_EQ(result.distinct_apns, 4u);
  EXPECT_EQ(result.validated_m2m_apns, 1u);
  EXPECT_EQ(result.consumer_apns, 2u);
}

TEST_F(ClassifierTest, CountsAndShares) {
  const DeviceClassifier classifier{catalog_};
  const std::vector<DeviceSummary> devices{
      device(1, 100, {}), device(2, 100, {}), device(3, 200, {}),
      device(4, 300, {"telemetry.rwe.com"})};
  const auto result = classifier.classify(devices);
  EXPECT_EQ(result.count_of(ClassLabel::kSmart), 2u);
  EXPECT_EQ(result.count_of(ClassLabel::kFeat), 1u);
  EXPECT_EQ(result.count_of(ClassLabel::kM2M), 1u);
  EXPECT_DOUBLE_EQ(result.share_of(ClassLabel::kSmart), 0.5);
}

TEST_F(ClassifierTest, CustomKeywordVocabulary) {
  ClassifierConfig config;
  config.m2m_keywords = {"mysteryvertical"};
  DeviceClassifier classifier{catalog_, config};
  const std::vector<DeviceSummary> devices{
      device(1, 400, {"data.mysteryvertical.io"}),
      device(2, 400, {"telemetry.rwe.com"}),  // rwe not in custom vocab
  };
  const auto result = classifier.classify(devices);
  EXPECT_EQ(result.labels[0], ClassLabel::kM2M);
  // Device 2's APN is unknown, but device 1 shares its TAC → propagation.
  EXPECT_EQ(result.labels[1], ClassLabel::kM2M);
}

TEST(ClassifierDefaults, VocabularyHas26KeywordsLikeThePaper) {
  EXPECT_EQ(default_m2m_keywords().size(), 26u);
}

TEST(ClassifierDefaults, VocabularyCoversKeywordedCompanies) {
  // Every keyworded vertical company must be matchable by the default
  // vocabulary (the generator and the classifier stay in sync).
  const auto keywords = default_m2m_keywords();
  for (int v = 1; v < devices::kVerticalCount; ++v) {
    for (const auto& company : devices::companies_of(static_cast<devices::Vertical>(v))) {
      if (company.keyword.empty()) continue;
      const bool covered =
          std::any_of(keywords.begin(), keywords.end(),
                      [&](std::string_view k) { return k == company.keyword; });
      EXPECT_TRUE(covered) << company.keyword;
    }
  }
}

TEST(ClassifierDefaults, NonKeywordedCompaniesAreNotCovered) {
  const auto keywords = default_m2m_keywords();
  for (int v = 1; v < devices::kVerticalCount; ++v) {
    for (const auto& company : devices::companies_of(static_cast<devices::Vertical>(v))) {
      if (!company.keyword.empty()) continue;
      for (std::string_view keyword : keywords) {
        EXPECT_EQ(company.domain.find(keyword), std::string_view::npos)
            << company.domain << " vs " << keyword;
      }
    }
  }
}

TEST(ClassLabels, Names) {
  EXPECT_EQ(class_label_name(ClassLabel::kSmart), "smart");
  EXPECT_EQ(class_label_name(ClassLabel::kFeat), "feat");
  EXPECT_EQ(class_label_name(ClassLabel::kM2M), "m2m");
  EXPECT_EQ(class_label_name(ClassLabel::kM2MMaybe), "m2m-maybe");
}

}  // namespace
}  // namespace wtr::core
