// Crash-recovery suite for the checkpoint subsystem. Two layers:
//
//  * Process-level kill injection: wtr_ckpt_harness (path baked in via
//    WTR_CKPT_HARNESS_PATH) is SIGKILL'd at randomized instants — each kill
//    waits for a *new* snapshot inode to land, then fires after a random
//    extra delay, so every cycle makes progress and the kill point varies —
//    then restarted with --resume until it completes. The recovered output
//    set (records / metrics / probe / manifest / resilience report) must be
//    byte-identical to an uninterrupted golden run, at threads=1 and
//    threads=4, under a non-empty FaultSchedule with 3GPP backoff enabled.
//
//  * Snapshot integrity: a deliberately truncated and a bit-flipped
//    snapshot must be rejected with a nonzero exit and a diagnostic on
//    stderr (never a silent wrong resume), and a config-mismatched resume
//    must fail the fleet-fingerprint check. The pristine snapshot then
//    resumes cleanly — proving the rejections were about corruption.
//
//  * In-process resume-across-faults: a faulted run interrupted *inside* an
//    outage window must resume with identical backoff timers (asserted via
//    the full per-agent state blob, which contains every T3411/T3402 timer
//    and the agent RNG), an identical spliced record stream, and identical
//    ResilienceReport totals — threads 1 and 4.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "faults/fault_schedule.hpp"
#include "faults/resilience_report.hpp"
#include "obs/observability.hpp"
#include "stats/sim_time.hpp"
#include "tracegen/mno_scenario.hpp"
#include "util/binio.hpp"

#ifndef WTR_CKPT_HARNESS_PATH
#error "WTR_CKPT_HARNESS_PATH must point at the wtr_ckpt_harness binary"
#endif

namespace wtr {
namespace {

namespace fs = std::filesystem;

// --- process plumbing -------------------------------------------------------

std::string make_temp_dir(const std::string& tag) {
  std::string tmpl = "/tmp/wtr_ckpt_" + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* dir = mkdtemp(buf.data());
  EXPECT_NE(dir, nullptr) << "mkdtemp failed for " << tmpl;
  return dir != nullptr ? std::string{dir} : std::string{};
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  return std::string{std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  ASSERT_TRUE(out.good()) << "cannot write " << path;
}

pid_t spawn_harness(const std::vector<std::string>& args,
                    const std::string& stderr_path = {}) {
  std::vector<std::string> full;
  full.emplace_back(WTR_CKPT_HARNESS_PATH);
  full.insert(full.end(), args.begin(), args.end());
  std::vector<char*> argv;
  argv.reserve(full.size() + 1);
  for (auto& s : full) argv.push_back(s.data());
  argv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid == 0) {
    if (!stderr_path.empty()) {
      const int fd =
          ::open(stderr_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
      if (fd >= 0) {
        ::dup2(fd, 2);
        ::close(fd);
      }
    }
    ::execv(argv[0], argv.data());
    _exit(127);
  }
  return pid;
}

/// Blocking wait; returns the exit code, or -signal when killed.
int wait_exit(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -9999;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return -WTERMSIG(status);
  return -9999;
}

int run_to_exit(const std::vector<std::string>& args,
                const std::string& stderr_path = {}) {
  return wait_exit(spawn_harness(args, stderr_path));
}

ino_t snapshot_inode(const std::string& path) {
  struct stat sb{};
  return ::stat(path.c_str(), &sb) == 0 ? sb.st_ino : 0;
}

struct KillRunResult {
  int kills = 0;
  bool completed = false;
  int attempts = 0;
};

/// Run the harness to completion while SIGKILL-ing it `target_kills` times.
/// Each kill waits for a NEW snapshot (atomic rename = new inode) and fires
/// after a random extra delay — a killed attempt therefore always resumes
/// from a strictly newer checkpoint than the previous one, which guarantees
/// forward progress no matter where the kill lands.
KillRunResult run_with_kills(const std::string& out_dir,
                             const std::vector<std::string>& base_args,
                             int target_kills, std::mt19937& rng) {
  const std::string ckpt = out_dir + "/ckpt.bin";
  std::uniform_int_distribution<int> extra_ms_dist{0, 120};
  KillRunResult result;

  while (result.attempts < 40) {
    std::vector<std::string> args = base_args;
    if (fs::exists(ckpt)) args.emplace_back("--resume");
    ++result.attempts;
    const pid_t pid = spawn_harness(args);

    bool killed = false;
    bool reaped = false;
    int status = 0;
    if (result.kills < target_kills) {
      const ino_t start_ino = snapshot_inode(ckpt);
      const int extra_ms = extra_ms_dist(rng);
      for (int waited_ms = 0; waited_ms < 120'000; waited_ms += 5) {
        if (::waitpid(pid, &status, WNOHANG) == pid) {
          reaped = true;  // finished before we could kill it
          break;
        }
        if (snapshot_inode(ckpt) != start_ino) {
          ::usleep(static_cast<useconds_t>(extra_ms) * 1000);
          ::kill(pid, SIGKILL);
          killed = true;
          ++result.kills;
          break;
        }
        ::usleep(5'000);
      }
    }

    const int exit_code =
        reaped ? (WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status))
               : wait_exit(pid);
    if (killed) {
      EXPECT_EQ(exit_code, -SIGKILL);
      continue;  // resume on the next attempt
    }
    if (exit_code == 0) {
      result.completed = true;
      return result;
    }
    ADD_FAILURE() << "harness exited " << exit_code << " without being killed";
    return result;
  }
  ADD_FAILURE() << "restart budget exhausted";
  return result;
}

void expect_same_file(const std::string& golden_dir, const std::string& crash_dir,
                      const std::string& name) {
  SCOPED_TRACE(name);
  const auto golden = read_file(golden_dir + "/" + name);
  const auto recovered = read_file(crash_dir + "/" + name);
  EXPECT_FALSE(golden.empty());
  EXPECT_EQ(golden, recovered);
}

// --- kill injection ---------------------------------------------------------

void run_kill_recovery(unsigned threads, std::uint32_t rng_seed) {
  const auto golden_dir = make_temp_dir("golden");
  const auto crash_dir = make_temp_dir("crash");
  ASSERT_FALSE(golden_dir.empty());
  ASSERT_FALSE(crash_dir.empty());

  const std::vector<std::string> common{
      "--scenario", "mno",         "--faults", "--devices", "800",
      "--seed",     "42",          "--ckpt-hours", "6",
      "--threads",  std::to_string(threads)};

  auto with_out = [&](const std::string& dir) {
    std::vector<std::string> args = common;
    args.emplace_back("--out");
    args.emplace_back(dir);
    return args;
  };

  ASSERT_EQ(run_to_exit(with_out(golden_dir)), 0);

  std::mt19937 rng{rng_seed};
  const auto result = run_with_kills(crash_dir, with_out(crash_dir), 3, rng);
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.kills, 3) << "run finished before enough kills landed — "
                                "raise --devices or lower --ckpt-hours";

  for (const auto* name :
       {"records.txt", "metrics.txt", "probe.txt", "MANIFEST.json",
        "resilience.txt"}) {
    expect_same_file(golden_dir, crash_dir, name);
  }

  fs::remove_all(golden_dir);
  fs::remove_all(crash_dir);
}

TEST(CheckpointRecovery, KillInjectionFaultedThreads1) {
  run_kill_recovery(1, 0xc0ffee);
}

TEST(CheckpointRecovery, KillInjectionFaultedThreads4) {
  run_kill_recovery(4, 0xbeef42);
}

/// Storm variant: kills land while the closed-loop congestion model is live
/// — mid-bucket attempt counts, T3346 timers and FOTA retry state all ride
/// the snapshot. Recovery must still converge to the golden run bytes.
void run_storm_kill_recovery(unsigned threads, std::uint32_t rng_seed) {
  const auto golden_dir = make_temp_dir("storm_golden");
  const auto crash_dir = make_temp_dir("storm_crash");
  ASSERT_FALSE(golden_dir.empty());
  ASSERT_FALSE(crash_dir.empty());

  // Big enough that every kill lands with real work still ahead of it (a
  // too-small fleet finishes before the inode watcher's delay elapses).
  const std::vector<std::string> common{
      "--scenario", "storm",       "--devices", "8000",
      "--seed",     "42",          "--ckpt-hours", "3",
      "--threads",  std::to_string(threads)};

  auto with_out = [&](const std::string& dir) {
    std::vector<std::string> args = common;
    args.emplace_back("--out");
    args.emplace_back(dir);
    return args;
  };

  ASSERT_EQ(run_to_exit(with_out(golden_dir)), 0);

  std::mt19937 rng{rng_seed};
  const auto result = run_with_kills(crash_dir, with_out(crash_dir), 2, rng);
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.kills, 2) << "run finished before enough kills landed — "
                                "raise --devices or lower --ckpt-hours";

  for (const auto* name : {"records.txt", "metrics.txt", "probe.txt",
                           "MANIFEST.json"}) {
    expect_same_file(golden_dir, crash_dir, name);
  }
  // The storm must actually have congested, or the kills never exercised
  // the model's snapshot path.
  EXPECT_NE(read_file(golden_dir + "/metrics.txt")
                .find("congestion.buckets_congested"),
            std::string::npos);

  fs::remove_all(golden_dir);
  fs::remove_all(crash_dir);
}

TEST(CheckpointRecovery, KillInjectionStormThreads1) {
  run_storm_kill_recovery(1, 0x570f31);
}

TEST(CheckpointRecovery, KillInjectionStormThreads2) {
  run_storm_kill_recovery(2, 0x570f32);
}

// --- snapshot integrity -----------------------------------------------------

TEST(CheckpointRecovery, CorruptSnapshotsAreRejected) {
  const auto dir = make_temp_dir("corrupt");
  ASSERT_FALSE(dir.empty());
  const std::string ckpt = dir + "/ckpt.bin";
  const std::string errs = dir + "/stderr.txt";

  const std::vector<std::string> base{"--scenario", "mno", "--devices", "200",
                                      "--seed", "7", "--out", dir};

  // Produce a deterministic snapshot via the in-process interrupt.
  {
    auto args = base;
    args.insert(args.end(), {"--stop-hours", "24"});
    ASSERT_EQ(run_to_exit(args), 3);
    ASSERT_TRUE(fs::exists(ckpt));
  }
  const std::string pristine = read_file(ckpt);
  ASSERT_GT(pristine.size(), 64u);

  auto resume_args = base;
  resume_args.emplace_back("--resume");

  {  // Torn file: truncated to half its length.
    write_file(ckpt, pristine.substr(0, pristine.size() / 2));
    EXPECT_EQ(run_to_exit(resume_args, errs), 4);
    EXPECT_NE(read_file(errs).find("snapshot"), std::string::npos);
  }
  {  // Single bit flip in the middle of the payload.
    std::string flipped = pristine;
    flipped[flipped.size() / 2] ^= 0x10;
    write_file(ckpt, flipped);
    EXPECT_EQ(run_to_exit(resume_args, errs), 4);
    EXPECT_NE(read_file(errs).find("snapshot"), std::string::npos);
  }
  {  // Pristine bytes but a different world: fleet fingerprint must reject.
    write_file(ckpt, pristine);
    std::vector<std::string> wrong{"--scenario", "mno",  "--devices", "200",
                                   "--seed",     "8",    "--out",     dir,
                                   "--resume"};
    EXPECT_EQ(run_to_exit(wrong, errs), 4);
  }
  {  // Sanity: the pristine snapshot with the right config resumes cleanly.
    write_file(ckpt, pristine);
    EXPECT_EQ(run_to_exit(resume_args), 0);
  }

  fs::remove_all(dir);
}

// --- in-process resume across an outage window ------------------------------

std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// StreamSerializer with a checkpointed byte offset: the in-process stand-in
/// for ckpt::TraceFileSink (same truncate-to-offset resume semantics, but
/// against an in-memory string the test can splice and compare).
class CheckpointableStream final : public sim::RecordSink,
                                   public ckpt::Checkpointable {
 public:
  std::string stream;

  void on_signaling(const signaling::SignalingTransaction& txn,
                    bool data_context) override {
    stream += "S:";
    for (const auto& field : signaling::to_csv_fields(txn)) {
      stream += field;
      stream += ',';
    }
    stream += data_context ? "dc\n" : "-\n";
  }
  void on_cdr(const records::Cdr& cdr) override {
    stream += "C:";
    for (const auto& field : records::to_csv_fields(cdr)) {
      stream += field;
      stream += ',';
    }
    stream += '\n';
  }
  void on_xdr(const records::Xdr& xdr) override {
    stream += "X:";
    for (const auto& field : records::to_csv_fields(xdr)) {
      stream += field;
      stream += ',';
    }
    stream += '\n';
  }
  void on_dwell(signaling::DeviceHash device, std::int32_t day,
                cellnet::Plmn visited_plmn, const cellnet::GeoPoint& location,
                double seconds) override {
    stream += "D:";
    stream += std::to_string(device);
    stream += ',';
    stream += std::to_string(day);
    stream += ',';
    stream += std::to_string(visited_plmn.key());
    stream += ',';
    stream += hex_double(location.lat);
    stream += ',';
    stream += hex_double(location.lon);
    stream += ',';
    stream += hex_double(seconds);
    stream += '\n';
  }

  void save_state(util::BinWriter& out) const override { out.u64(stream.size()); }
  void restore_state(util::BinReader& in) override {
    const auto size = in.u64();
    if (size > stream.size()) {
      throw std::runtime_error("stream shorter than checkpointed offset");
    }
    stream.resize(size);
  }
};

std::string dump_metrics(const obs::MetricsRegistry& metrics) {
  std::string out;
  for (const auto& [name, counter] : metrics.counters()) {
    out += name + "=" + std::to_string(counter.value()) + "\n";
  }
  for (const auto& [name, gauge] : metrics.gauges()) {
    out += name + "=" + hex_double(gauge.value()) + "\n";
  }
  for (const auto& [name, hist] : metrics.histograms()) {
    out += name + ": n=" + std::to_string(hist.count()) +
           " sum=" + hex_double(hist.sum()) + " buckets=";
    for (const auto b : hist.bucket_counts()) out += std::to_string(b) + ",";
    out += "\n";
  }
  return out;
}

std::string dump_probe(const obs::EngineProbe& probe) {
  std::string out;
  for (const auto& s : probe.samples()) {
    out += std::to_string(s.sim_time) + "|" + std::to_string(s.wakes) + "|" +
           std::to_string(s.queue_depth) + "|" + std::to_string(s.records) + "|" +
           std::to_string(s.attach_attempts) + "|" +
           std::to_string(s.attach_failures) + "|" +
           std::to_string(s.active_fault_episodes) + "\n";
  }
  return out;
}

std::string dump_resilience(const faults::ResilienceSummary& summary) {
  std::string out;
  out += "procedures=" + std::to_string(summary.procedures) + "\n";
  out += "failures=" + std::to_string(summary.failures) + "\n";
  for (std::size_t code = 0; code < summary.by_code.size(); ++code) {
    out += std::to_string(summary.by_code[code]) + ",";
  }
  out += "\n";
  for (const auto& [day, n] : summary.failures_by_day) {
    out += "day," + std::to_string(day) + "=" + std::to_string(n) + "\n";
  }
  for (const auto& [op, n] : summary.failures_by_operator) {
    out += "op," + std::to_string(op) + "=" + std::to_string(n) + "\n";
  }
  for (const auto& rec : summary.recoveries) {
    out += "recovery," + std::to_string(rec.episode_index) + "," +
           std::to_string(rec.outage_end) + "," +
           (rec.first_success_after ? std::to_string(*rec.first_success_after)
                                    : std::string{"none"}) +
           "\n";
  }
  return out;
}

/// Every mutable per-agent field — RNG words, EMM machine, every backoff
/// timer — serialized for the whole fleet. Blob equality is the strongest
/// possible "same backoff timers after resume" statement.
std::string fleet_state_blob(const sim::Engine& engine) {
  util::BinWriter out;
  for (std::size_t i = 0; i < engine.agent_count(); ++i) {
    engine.agent(i).save_state(out);
  }
  return out.take();
}

tracegen::MnoScenarioConfig faulted_config(unsigned threads,
                                           const faults::FaultSchedule* faults,
                                           obs::Observability obs) {
  tracegen::MnoScenarioConfig config;
  config.seed = 42;
  config.total_devices = 400;
  config.threads = threads;
  config.build_coverage = false;
  config.faults = faults;
  config.backoff.enabled = true;
  config.obs = obs;
  return config;
}

struct FaultedCapture {
  std::string stream;
  std::string metrics;
  std::string probe;
  std::string resilience;
  std::string fleet;
};

FaultedCapture run_faulted_uninterrupted(unsigned threads,
                                         const faults::FaultSchedule& schedule) {
  obs::RunObservation observation;
  tracegen::MnoScenario scenario{
      faulted_config(threads, &schedule, observation.view())};
  CheckpointableStream sink;
  scenario.engine().register_checkpointable("stream", &sink);
  faults::ResilienceReport report{scenario.world(), schedule,
                                  &observation.metrics()};
  scenario.engine().register_checkpointable("resilience", &report);
  scenario.run({&sink, &report});
  return {sink.stream, dump_metrics(observation.metrics()),
          dump_probe(observation.probe()), dump_resilience(report.summary()),
          fleet_state_blob(scenario.engine())};
}

TEST(CheckpointRecovery, ResumeInsideOutageWindowIsDeterministic) {
  // Schedule: full UK outage on day 3, hours 8..14 — the interrupt lands at
  // hour 82 (= day 3 + 10h), squarely inside the window, while rejected
  // attaches are sitting on live backoff timers.
  constexpr stats::SimTime kHour = 3600;
  constexpr std::int64_t kStopHours = 3 * 24 + 10;
  faults::FaultSchedule schedule;
  {
    tracegen::MnoScenarioConfig probe_config;
    probe_config.seed = 42;
    probe_config.total_devices = 10;
    probe_config.build_coverage = false;
    tracegen::MnoScenario throwaway{probe_config};
    const auto uk = throwaway.world().well_known().uk_mno;
    schedule.add_outage(uk, stats::day_start(3) + 8 * kHour,
                        stats::day_start(3) + 14 * kHour, 1.0);
    schedule.add_storm(uk, stats::day_start(5) + 10 * kHour,
                       stats::day_start(5) + 16 * kHour, 0.35);
  }

  const auto golden = run_faulted_uninterrupted(1, schedule);
  ASSERT_FALSE(golden.stream.empty());

  for (const unsigned threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto dir = make_temp_dir("outage");
    ASSERT_FALSE(dir.empty());
    const std::string ckpt = dir + "/ckpt.bin";

    // Phase 1: run to the in-process interrupt inside the outage window.
    std::string partial_stream;
    {
      obs::RunObservation observation;
      auto config = faulted_config(threads, &schedule, observation.view());
      config.ckpt.path = ckpt;
      config.ckpt.stop_after_sim_hours = kStopHours;
      tracegen::MnoScenario scenario{config};
      CheckpointableStream sink;
      scenario.engine().register_checkpointable("stream", &sink);
      faults::ResilienceReport report{scenario.world(), schedule,
                                      &observation.metrics()};
      scenario.engine().register_checkpointable("resilience", &report);
      scenario.run({&sink, &report});
      ASSERT_TRUE(scenario.engine().interrupted());
      ASSERT_TRUE(fs::exists(ckpt));
      partial_stream = sink.stream;
    }
    EXPECT_FALSE(partial_stream.empty());
    // The interrupted prefix must itself be a prefix of the golden stream.
    ASSERT_LE(partial_stream.size(), golden.stream.size());
    EXPECT_EQ(partial_stream, golden.stream.substr(0, partial_stream.size()));

    // Phase 2: identical construction, restore, run to the horizon.
    obs::RunObservation observation;
    tracegen::MnoScenario scenario{
        faulted_config(threads, &schedule, observation.view())};
    CheckpointableStream sink;
    sink.stream = partial_stream;  // the "persisted" prefix a file sink keeps
    scenario.engine().register_checkpointable("stream", &sink);
    faults::ResilienceReport report{scenario.world(), schedule,
                                    &observation.metrics()};
    scenario.engine().register_checkpointable("resilience", &report);
    scenario.resume_from(ckpt);
    EXPECT_TRUE(scenario.engine().resumed());
    scenario.run({&sink, &report});
    EXPECT_FALSE(scenario.engine().interrupted());

    EXPECT_EQ(sink.stream, golden.stream);
    EXPECT_EQ(dump_metrics(observation.metrics()), golden.metrics);
    EXPECT_EQ(dump_probe(observation.probe()), golden.probe);
    EXPECT_EQ(dump_resilience(report.summary()), golden.resilience);
    EXPECT_EQ(fleet_state_blob(scenario.engine()), golden.fleet);

    fs::remove_all(dir);
  }
}

}  // namespace
}  // namespace wtr
