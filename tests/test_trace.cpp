// Flight-recorder suite. Three layers:
//
//  * Unit: the single-writer TraceTrack ring (wrap keeps the newest events
//    and counts the overwritten ones as dropped), the Chrome trace-event
//    export (valid shape even when empty or overflowed), TraceSpan's
//    null-recorder and idempotent-close contracts, and the atomic
//    single-line heartbeat writer.
//
//  * Determinism: a traced engine run must produce a byte-identical record
//    stream, probe trajectory and (trace.*-filtered) metrics dump to an
//    untraced run, at threads=1 and threads=4 — the recorder observes,
//    never perturbs. The export itself must carry spans from every shard
//    plus merge and checkpoint events.
//
//  * Threading: shard threads open ScopedTimer spans against one shared
//    PhaseTimers concurrently (scripts/check.sh runs this suite under TSan,
//    so any race in the slot map or the recorder's barrier-quiesced rings
//    fails the gate), and EngineProbe trajectories survive checkpoint/
//    resume byte-identically — including a resume in the middle of a retry
//    storm with congestion state live.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "faults/congestion.hpp"
#include "obs/heartbeat.hpp"
#include "obs/observability.hpp"
#include "obs/trace.hpp"
#include "tracegen/mno_scenario.hpp"
#include "tracegen/storm_scenario.hpp"
#include "util/binio.hpp"

namespace wtr {
namespace {

namespace fs = std::filesystem;

// --- shared plumbing --------------------------------------------------------

std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

class StreamSerializer final : public sim::RecordSink, public ckpt::Checkpointable {
 public:
  std::string stream;

  void on_signaling(const signaling::SignalingTransaction& txn,
                    bool data_context) override {
    stream += "S:";
    for (const auto& field : signaling::to_csv_fields(txn)) {
      stream += field;
      stream += ',';
    }
    stream += data_context ? "dc\n" : "-\n";
  }
  void on_cdr(const records::Cdr& cdr) override {
    stream += "C:";
    for (const auto& field : records::to_csv_fields(cdr)) {
      stream += field;
      stream += ',';
    }
    stream += '\n';
  }
  void on_xdr(const records::Xdr& xdr) override {
    stream += "X:";
    for (const auto& field : records::to_csv_fields(xdr)) {
      stream += field;
      stream += ',';
    }
    stream += '\n';
  }

  void save_state(util::BinWriter& out) const override { out.u64(stream.size()); }
  void restore_state(util::BinReader& in) override {
    const auto size = in.u64();
    if (size > stream.size()) {
      throw std::runtime_error("stream shorter than snapshot offset");
    }
    stream.resize(size);
  }
};

/// Metrics dump with the trace.* family filtered out: those gauges are
/// wall-clock-derived and only published on traced runs, so byte-identity
/// claims compare everything else.
std::string dump_metrics_filtered(const obs::MetricsRegistry& metrics) {
  const auto volatile_name = [](const std::string& name) {
    return name.rfind("trace.", 0) == 0;
  };
  std::string out;
  for (const auto& [name, counter] : metrics.counters()) {
    if (volatile_name(name)) continue;
    out += name + "=" + std::to_string(counter.value()) + "\n";
  }
  for (const auto& [name, gauge] : metrics.gauges()) {
    if (volatile_name(name)) continue;
    out += name + "=" + hex_double(gauge.value()) + "\n";
  }
  return out;
}

std::string dump_probe(const obs::EngineProbe& probe) {
  std::string out;
  for (const auto& s : probe.samples()) {
    out += std::to_string(s.sim_time) + "|" + std::to_string(s.wakes) + "|" +
           std::to_string(s.queue_depth) + "|" + std::to_string(s.records) + "|" +
           std::to_string(s.attach_attempts) + "|" +
           std::to_string(s.attach_failures) + "|" +
           std::to_string(s.active_fault_episodes) + "\n";
  }
  out += "max=" + std::to_string(probe.queue_depth_max());
  out += " records=" + std::to_string(probe.records_total());
  out += " failures=" + std::to_string(probe.attach_failures());
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  return std::string{std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>()};
}

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t count = 0;
  for (auto pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// --- TraceTrack ring --------------------------------------------------------

TEST(TraceTrack, WrapKeepsNewestEventsAndCountsDropped) {
  obs::TraceTrack track{4};
  for (int i = 0; i < 10; ++i) {
    obs::TraceEvent event;
    event.name = "e";
    event.start_ns = i;
    event.dur_ns = 1;
    track.push(event);
  }
  EXPECT_EQ(track.recorded(), 10u);
  EXPECT_EQ(track.dropped(), 6u);
  const auto retained = track.ordered();
  ASSERT_EQ(retained.size(), 4u);
  // Oldest-first, and only the newest four survive the wrap.
  for (std::size_t i = 0; i < retained.size(); ++i) {
    EXPECT_EQ(retained[i].seq, 6u + i);
    EXPECT_EQ(retained[i].start_ns, static_cast<std::int64_t>(6 + i));
  }
}

TEST(TraceTrack, NoDropsBelowCapacity) {
  obs::TraceTrack track{8};
  for (int i = 0; i < 5; ++i) {
    obs::TraceEvent event;
    event.name = "e";
    track.push(event);
  }
  EXPECT_EQ(track.recorded(), 5u);
  EXPECT_EQ(track.dropped(), 0u);
  EXPECT_EQ(track.ordered().size(), 5u);
}

// --- FlightRecorder export --------------------------------------------------

TEST(FlightRecorder, EmptyExportIsWellFormed) {
  const obs::FlightRecorder recorder{2, 16};
  const auto json = recorder.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // The engine track's thread-name metadata is always present; empty shard
  // tracks are omitted entirely.
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("engine"), std::string::npos);
  EXPECT_EQ(json.find("shard_0"), std::string::npos);
  EXPECT_EQ(recorder.events_recorded(), 0u);
  EXPECT_EQ(recorder.events_dropped(), 0u);
}

TEST(FlightRecorder, ExportCarriesSpansInstantsArgsAndTracks) {
  obs::FlightRecorder recorder{2, 16};
  recorder.complete(obs::FlightRecorder::kEngineTrack, obs::TraceCat::kMerge,
                    "merge", 1'000, 2'000, "wakes", 42);
  recorder.instant(obs::FlightRecorder::shard_track(0), obs::TraceCat::kShard,
                   "wake_batch", "queue_depth", 7);
  EXPECT_EQ(recorder.events_recorded(), 2u);

  const auto json = recorder.to_chrome_json();
  EXPECT_NE(json.find("\"name\":\"merge\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"wake_batch\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"wakes\":42"), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\":7"), std::string::npos);
  EXPECT_NE(json.find("shard_0"), std::string::npos);
  // The untouched shard 1 track leaves no ghost.
  EXPECT_EQ(json.find("shard_1"), std::string::npos);
  // Categories come out as their names.
  EXPECT_NE(json.find(obs::trace_cat_name(obs::TraceCat::kMerge)), std::string::npos);
}

TEST(FlightRecorder, OverflowedExportStaysWellFormed) {
  obs::FlightRecorder recorder{1, 2};
  for (int i = 0; i < 9; ++i) {
    recorder.instant(obs::FlightRecorder::kEngineTrack, obs::TraceCat::kEngine, "tick");
  }
  EXPECT_EQ(recorder.events_recorded(), 9u);
  EXPECT_EQ(recorder.events_dropped(), 7u);
  const auto json = recorder.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"tick\""), 2u);
}

TEST(FlightRecorder, WriteCreatesFileAndSurvivesBadPath) {
  obs::FlightRecorder recorder{1, 8};
  recorder.instant(obs::FlightRecorder::kEngineTrack, obs::TraceCat::kEngine, "tick");
  const auto path = temp_path("wtr_test_trace_write.json");
  ASSERT_TRUE(recorder.write(path));
  const auto body = read_file(path);
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  fs::remove(path);
  // Tracing must never turn a finished run into an error: a bad path is a
  // warning and a false return, not a throw.
  EXPECT_FALSE(recorder.write("/nonexistent-dir/trace.json"));
}

TEST(TraceSpan, NullRecorderIsNoopAndCloseIsIdempotent) {
  {
    obs::TraceSpan span{nullptr, 0, obs::TraceCat::kEngine, "noop"};
    span.set_args("a", 1);
    span.close();  // must not crash
  }
  obs::FlightRecorder recorder{1, 8};
  {
    obs::TraceSpan span{&recorder, obs::FlightRecorder::kEngineTrack,
                        obs::TraceCat::kEngine, "once"};
    span.close();
    span.close();  // second close and the destructor must both no-op
  }
  EXPECT_EQ(recorder.events_recorded(), 1u);
}

// --- heartbeat writer -------------------------------------------------------

TEST(Heartbeat, WritesAtomicSingleLineJson) {
  const auto path = temp_path("wtr_test_heartbeat.json");
  obs::HeartbeatWriter writer{path, 0.0};
  obs::HeartbeatStatus status;
  status.phase = "run";
  status.sim_time_s = 3600.0;
  status.horizon_s = 7200.0;
  status.wakes = 10;
  status.records = 20;
  ASSERT_TRUE(writer.write_now(status));
  EXPECT_EQ(writer.beats_written(), 1u);

  const auto body = read_file(path);
  ASSERT_FALSE(body.empty());
  // Single line, rewritten in place via tmp + rename (no tmp residue).
  EXPECT_EQ(count_occurrences(body, "\n"), 1u);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  EXPECT_NE(body.find("\"phase\":\"run\""), std::string::npos);
  EXPECT_NE(body.find("\"progress\":0.5"), std::string::npos);
  EXPECT_NE(body.find("\"wakes\":10"), std::string::npos);
  EXPECT_NE(body.find("\"last_checkpoint_s\":-1"), std::string::npos);
  fs::remove(path);
}

TEST(Heartbeat, MaybeWriteRateLimits) {
  const auto path = temp_path("wtr_test_heartbeat_rl.json");
  obs::HeartbeatWriter writer{path, 3600.0};
  obs::HeartbeatStatus status;
  EXPECT_TRUE(writer.maybe_write(status));
  EXPECT_FALSE(writer.maybe_write(status));  // inside the interval: dropped
  EXPECT_TRUE(writer.write_now(status));     // write_now ignores the limit
  EXPECT_EQ(writer.beats_written(), 2u);
  fs::remove(path);
}

// --- engine integration: tracing never perturbs -----------------------------

struct MnoCapture {
  std::string stream;
  std::string metrics;
  std::string probe;
};

MnoCapture run_mno(unsigned threads, const std::string& trace_path,
                   std::size_t trace_capacity = std::size_t{1} << 15,
                   const std::string& heartbeat_path = {}) {
  obs::RunObservation observation;
  tracegen::MnoScenarioConfig config;
  config.seed = 42;
  config.total_devices = 300;
  config.threads = threads;
  config.build_coverage = false;
  config.obs = observation.view();
  config.telemetry.trace_path = trace_path;
  config.telemetry.trace_capacity_per_track = trace_capacity;
  config.telemetry.heartbeat_path = heartbeat_path;
  config.telemetry.heartbeat_every_wall_s = 0.0;
  tracegen::MnoScenario scenario{config};
  StreamSerializer sink;
  scenario.run({&sink});
  MnoCapture cap;
  cap.stream = std::move(sink.stream);
  cap.metrics = dump_metrics_filtered(observation.metrics());
  cap.probe = dump_probe(observation.probe());
  return cap;
}

TEST(TracedEngine, TraceOnOffByteIdenticalAcrossThreads) {
  const auto golden = run_mno(1, "");
  ASSERT_FALSE(golden.stream.empty());
  for (const unsigned threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto path =
        temp_path("wtr_test_trace_identity_" + std::to_string(threads) + ".json");
    const auto traced = run_mno(threads, path);
    EXPECT_EQ(golden.stream, traced.stream);
    EXPECT_EQ(golden.metrics, traced.metrics);
    EXPECT_EQ(golden.probe, traced.probe);
    // The side file actually landed and is a trace-event document.
    const auto json = read_file(path);
    ASSERT_FALSE(json.empty());
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    fs::remove(path);
  }
}

TEST(TracedEngine, ExportCarriesShardMergeAndWindowSpans) {
  const auto path = temp_path("wtr_test_trace_spans.json");
  run_mno(4, path);
  const auto json = read_file(path);
  ASSERT_FALSE(json.empty());
  // Every shard contributed a track...
  for (int s = 0; s < 4; ++s) {
    EXPECT_NE(json.find("shard_" + std::to_string(s)), std::string::npos);
  }
  // ...and the engine track carries the fan-out/merge structure.
  EXPECT_NE(json.find("\"name\":\"shard_window\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"shard_fanout\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"merge\""), std::string::npos);
  fs::remove(path);
}

TEST(TracedEngine, CheckpointSpansAppearInExport) {
  const auto dir = temp_path("wtr_test_trace_ckpt");
  fs::create_directories(dir);
  obs::RunObservation observation;
  tracegen::MnoScenarioConfig config;
  config.seed = 42;
  config.total_devices = 200;
  config.build_coverage = false;
  config.obs = observation.view();
  config.ckpt.every_sim_hours = 48;
  config.ckpt.path = dir + "/ckpt.bin";
  config.telemetry.trace_path = dir + "/trace.json";
  tracegen::MnoScenario scenario{config};
  StreamSerializer sink;
  scenario.engine().register_checkpointable("stream", &sink);
  scenario.run({&sink});
  ASSERT_GT(scenario.engine().checkpoints_written(), 0u);
  const auto json = read_file(dir + "/trace.json");
  EXPECT_NE(json.find("\"name\":\"ckpt_serialize\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"ckpt_write\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"ckpt_fsync\""), std::string::npos);
  fs::remove_all(dir);
}

TEST(TracedEngine, TinyRingOverflowsGracefully) {
  const auto dir = temp_path("wtr_test_trace_tiny");
  fs::create_directories(dir);
  const auto path = dir + "/trace.json";
  obs::RunObservation observation;
  tracegen::MnoScenarioConfig config;
  config.seed = 42;
  config.total_devices = 300;
  config.threads = 2;
  config.build_coverage = false;
  config.obs = observation.view();
  config.telemetry.trace_path = path;
  config.telemetry.trace_capacity_per_track = 4;
  // A 6h checkpoint cadence forces ~88 window barriers over the 22-day
  // horizon, so every 4-slot ring wraps many times over.
  config.ckpt.every_sim_hours = 6;
  config.ckpt.path = dir + "/ckpt.bin";
  tracegen::MnoScenario scenario{config};
  StreamSerializer sink;
  scenario.engine().register_checkpointable("stream", &sink);
  scenario.run({&sink});
  auto* recorder = scenario.engine().flight_recorder();
  ASSERT_NE(recorder, nullptr);
  EXPECT_GT(recorder->events_dropped(), 0u);
  EXPECT_GT(recorder->events_recorded(), recorder->events_dropped());
  const auto json = read_file(path);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  fs::remove_all(dir);
}

TEST(TracedEngine, HeartbeatLandsAndFinishesDone) {
  const auto trace = temp_path("wtr_test_trace_hb.json");
  const auto beat = temp_path("wtr_test_trace_hb_beat.json");
  run_mno(2, trace, std::size_t{1} << 15, beat);
  const auto body = read_file(beat);
  ASSERT_FALSE(body.empty());
  EXPECT_EQ(count_occurrences(body, "\n"), 1u);
  EXPECT_NE(body.find("\"phase\":\"done\""), std::string::npos);
  EXPECT_NE(body.find("\"progress\":1.0"), std::string::npos);
  fs::remove(trace);
  fs::remove(beat);
}

// --- PhaseTimers under shard-thread concurrency (TSan target) ---------------

TEST(PhaseTimersThreaded, ConcurrentSpansAccumulateExactCounts) {
  obs::PhaseTimers timers;
  // Open the racing phase names once from the main thread so the
  // first-insertion order is deterministic (the documented pattern).
  {
    obs::ScopedTimer outer{&timers, "shard_work"};
    obs::ScopedTimer inner{&timers, "inner"};
  }
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&timers] {
      for (int i = 0; i < kIters; ++i) {
        obs::ScopedTimer outer{&timers, "shard_work"};
        obs::ScopedTimer inner{&timers, "inner"};
      }
    });
  }
  for (auto& worker : workers) worker.join();

  bool saw_outer = false;
  bool saw_inner = false;
  for (const auto& phase : timers.phases()) {
    if (phase.path == "shard_work") {
      saw_outer = true;
      EXPECT_EQ(phase.count, 1u + kThreads * kIters);
      EXPECT_EQ(phase.depth, 0);
    }
    if (phase.path == "shard_work/inner") {
      saw_inner = true;
      EXPECT_EQ(phase.count, 1u + kThreads * kIters);
      EXPECT_EQ(phase.depth, 1);
    }
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
}

TEST(PhaseTimersThreaded, NestingStacksArePerThread) {
  obs::PhaseTimers timers;
  obs::ScopedTimer outer{&timers, "main_outer"};
  // A span opened on another thread must not nest under the main thread's
  // open span: each thread has its own ancestry.
  std::thread worker{[&timers] { obs::ScopedTimer span{&timers, "worker_span"}; }};
  worker.join();
  EXPECT_GT(timers.total_s("worker_span"), 0.0);
  EXPECT_EQ(timers.total_s("main_outer/worker_span"), 0.0);
}

// --- EngineProbe across checkpoint/resume -----------------------------------

TEST(ProbeResume, TrajectoryIdenticalAfterResume) {
  // Golden uninterrupted run.
  MnoCapture golden;
  {
    obs::RunObservation observation;
    tracegen::MnoScenarioConfig config;
    config.seed = 42;
    config.total_devices = 300;
    config.build_coverage = false;
    config.obs = observation.view();
    tracegen::MnoScenario scenario{config};
    StreamSerializer sink;
    scenario.engine().register_checkpointable("stream", &sink);
    scenario.run({&sink});
    golden.stream = std::move(sink.stream);
    golden.probe = dump_probe(observation.probe());
  }
  ASSERT_FALSE(golden.stream.empty());

  const auto dir = temp_path("wtr_test_probe_resume");
  fs::create_directories(dir);
  const std::string ckpt = dir + "/ckpt.bin";

  // Phase 1: deterministic interrupt at day 8.
  std::string partial;
  {
    obs::RunObservation observation;
    tracegen::MnoScenarioConfig config;
    config.seed = 42;
    config.total_devices = 300;
    config.build_coverage = false;
    config.obs = observation.view();
    config.ckpt.path = ckpt;
    config.ckpt.stop_after_sim_hours = 8 * 24;
    tracegen::MnoScenario scenario{config};
    StreamSerializer sink;
    scenario.engine().register_checkpointable("stream", &sink);
    scenario.run({&sink});
    ASSERT_TRUE(scenario.engine().interrupted());
    partial = std::move(sink.stream);
  }

  // Phase 2: resume and run out; the probe trajectory (samples and totals)
  // must equal the uninterrupted run's exactly.
  obs::RunObservation observation;
  tracegen::MnoScenarioConfig config;
  config.seed = 42;
  config.total_devices = 300;
  config.build_coverage = false;
  config.obs = observation.view();
  tracegen::MnoScenario scenario{config};
  StreamSerializer sink;
  sink.stream = partial;
  scenario.engine().register_checkpointable("stream", &sink);
  scenario.resume_from(ckpt);
  scenario.run({&sink});
  EXPECT_EQ(sink.stream, golden.stream);
  EXPECT_EQ(dump_probe(observation.probe()), golden.probe);
  fs::remove_all(dir);
}

TEST(ProbeResume, TrajectoryIdenticalAfterMidStormResume) {
  // Same claim with congestion live: the interrupt lands at hour 9 — after
  // the FOTA campaign kicks off at hour 8 — so T3346 timers and a half-open
  // congestion bucket are part of the resumed state.
  auto storm_config = [](faults::CongestionModel* model) {
    tracegen::StormScenarioConfig config;
    config.seed = 77;
    config.meters = 240;
    config.trackers = 60;
    config.days = 1;
    config.checkin_jitter_s = 150.0;
    config.fota_start_s = 8 * 3600;
    config.fota_failure_p = 0.4;
    config.backoff.enabled = true;
    config.congestion = model;
    return config;
  };
  faults::CongestionConfig congestion;
  congestion.bucket_s = 60;
  std::size_t op_count = 0;
  {
    auto probe_config = storm_config(nullptr);
    probe_config.meters = 8;
    probe_config.trackers = 2;
    tracegen::StormScenario probe{probe_config};
    congestion.capacities = {{probe.observer_radio(), 48.0}};
    op_count = probe.operator_count();
  }

  std::string golden_stream;
  std::string golden_probe;
  {
    obs::RunObservation observation;
    faults::CongestionModel model{congestion, op_count};
    auto config = storm_config(&model);
    config.obs = observation.view();
    tracegen::StormScenario scenario{config};
    StreamSerializer sink;
    scenario.engine().register_checkpointable("stream", &sink);
    scenario.run({&sink});
    golden_stream = std::move(sink.stream);
    golden_probe = dump_probe(observation.probe());
  }
  ASSERT_FALSE(golden_stream.empty());
  ASSERT_GT(count_occurrences(golden_stream, "Congestion"), 0u);

  const auto dir = temp_path("wtr_test_probe_storm_resume");
  fs::create_directories(dir);
  const std::string ckpt = dir + "/ckpt.bin";

  std::string partial;
  {
    obs::RunObservation observation;
    faults::CongestionModel model{congestion, op_count};
    auto config = storm_config(&model);
    config.obs = observation.view();
    config.ckpt.path = ckpt;
    config.ckpt.stop_after_sim_hours = 9;
    tracegen::StormScenario scenario{config};
    StreamSerializer sink;
    scenario.engine().register_checkpointable("stream", &sink);
    scenario.run({&sink});
    ASSERT_TRUE(scenario.engine().interrupted());
    partial = std::move(sink.stream);
  }
  ASSERT_FALSE(partial.empty());
  ASSERT_LT(partial.size(), golden_stream.size());

  obs::RunObservation observation;
  faults::CongestionModel model{congestion, op_count};
  auto config = storm_config(&model);
  config.obs = observation.view();
  tracegen::StormScenario scenario{config};
  StreamSerializer sink;
  sink.stream = partial;
  scenario.engine().register_checkpointable("stream", &sink);
  scenario.resume_from(ckpt);
  EXPECT_TRUE(scenario.engine().resumed());
  scenario.run({&sink});
  EXPECT_EQ(sink.stream, golden_stream);
  EXPECT_EQ(dump_probe(observation.probe()), golden_probe);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace wtr
