#include "stats/ecdf.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>

#include "stats/rng.hpp"

namespace wtr::stats {
namespace {

TEST(Ecdf, EmptyBehaviour) {
  Ecdf ecdf;
  EXPECT_TRUE(ecdf.empty());
  EXPECT_EQ(ecdf.size(), 0u);
  EXPECT_EQ(ecdf.fraction_at_most(100.0), 0.0);
  EXPECT_EQ(ecdf.describe(), "(empty)");
}

TEST(Ecdf, FractionAtMost) {
  Ecdf ecdf{{1.0, 2.0, 3.0, 4.0}};
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_most(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_most(1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_most(2.5), 0.5);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_most(4.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_most(99.0), 1.0);
}

TEST(Ecdf, FractionAboveComplements) {
  Ecdf ecdf{{1.0, 2.0, 3.0, 4.0}};
  for (double x : {0.0, 1.5, 2.0, 5.0}) {
    EXPECT_DOUBLE_EQ(ecdf.fraction_at_most(x) + ecdf.fraction_above(x), 1.0);
  }
}

TEST(Ecdf, QuantileEndpoints) {
  Ecdf ecdf{{10.0, 20.0, 30.0}};
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(1.0), 30.0);
  EXPECT_DOUBLE_EQ(ecdf.median(), 20.0);
  EXPECT_DOUBLE_EQ(ecdf.min(), 10.0);
  EXPECT_DOUBLE_EQ(ecdf.max(), 30.0);
}

TEST(Ecdf, QuantileInterpolates) {
  Ecdf ecdf{{0.0, 10.0}};
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.25), 2.5);
}

TEST(Ecdf, QuantileClampsOutOfRange) {
  Ecdf ecdf{{1.0, 2.0}};
  EXPECT_DOUBLE_EQ(ecdf.quantile(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(2.0), 2.0);
}

TEST(Ecdf, SingleSample) {
  Ecdf ecdf;
  ecdf.add(7.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.3), 7.0);
  EXPECT_DOUBLE_EQ(ecdf.mean(), 7.0);
}

TEST(Ecdf, AddCount) {
  Ecdf ecdf;
  ecdf.add_count(1.0, 3);
  ecdf.add_count(2.0, 1);
  EXPECT_EQ(ecdf.size(), 4u);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_most(1.0), 0.75);
}

TEST(Ecdf, AddAfterQueryResorts) {
  Ecdf ecdf{{5.0, 1.0}};
  EXPECT_DOUBLE_EQ(ecdf.median(), 3.0);
  ecdf.add(0.0);
  EXPECT_DOUBLE_EQ(ecdf.min(), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.median(), 1.0);
}

TEST(Ecdf, EvaluateSeries) {
  Ecdf ecdf{{1.0, 2.0, 3.0, 4.0}};
  const std::vector<double> points{0.0, 2.0, 5.0};
  const auto series = ecdf.evaluate(points);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0], 0.0);
  EXPECT_DOUBLE_EQ(series[1], 0.5);
  EXPECT_DOUBLE_EQ(series[2], 1.0);
}

TEST(Ecdf, MeanMatchesArithmetic) {
  Ecdf ecdf{{2.0, 4.0, 6.0}};
  EXPECT_DOUBLE_EQ(ecdf.mean(), 4.0);
}

TEST(Ecdf, SortedSamplesAreSorted) {
  Ecdf ecdf{{3.0, 1.0, 2.0}};
  const auto& sorted = ecdf.sorted_samples();
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

TEST(Ecdf, QuantileNanReturnsNan) {
  // quantile(NaN) must not reach floor()/the integer index cast (UB); it
  // reports NaN without touching the samples.
  Ecdf ecdf{{1.0, 2.0, 3.0}};
  const double q = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(ecdf.quantile(q)));
  // And the probe did not disturb regular queries.
  EXPECT_DOUBLE_EQ(ecdf.median(), 2.0);
}

TEST(Ecdf, MeanIsInsertionOrderIndependent) {
  // FP addition is not associative: summing in insertion order gives a
  // different last-bit result than summing the same values sorted. mean()
  // must always sum in sorted order so two pipelines that produced the same
  // multiset of samples print byte-identical figures.
  Rng rng{42};
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) {
    // Wide magnitude spread maximizes cancellation sensitivity.
    samples.push_back(rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform(-8.0, 8.0)));
  }
  Ecdf forward;
  for (const double s : samples) forward.add(s);
  Ecdf backward;
  for (auto it = samples.rbegin(); it != samples.rend(); ++it) backward.add(*it);
  std::shuffle(samples.begin(), samples.end(), std::mt19937{7});
  Ecdf shuffled;
  for (const double s : samples) shuffled.add(s);

  const double reference = forward.mean();
  EXPECT_EQ(backward.mean(), reference);  // exact, not EXPECT_DOUBLE_EQ
  EXPECT_EQ(shuffled.mean(), reference);
}

TEST(Ecdf, MeanSameBeforeAndAfterSortingQuery) {
  // mean() before any sorted query must equal mean() after one bit-for-bit
  // (this is the original bug: pre-sort summation order differed).
  Rng rng{9};
  std::vector<double> samples;
  for (int i = 0; i < 257; ++i) samples.push_back(rng.uniform(-1e6, 1e6));

  Ecdf fresh;
  for (const double s : samples) fresh.add(s);
  const double mean_before_sort = fresh.mean();

  Ecdf queried;
  for (const double s : samples) queried.add(s);
  (void)queried.median();  // forces the sort
  EXPECT_EQ(queried.mean(), mean_before_sort);
}

TEST(Ecdf, MakeEcdfProjection) {
  struct Item {
    int v;
  };
  const std::vector<Item> items{{1}, {2}, {3}};
  const auto ecdf = make_ecdf(items, [](const Item& item) { return item.v; });
  EXPECT_EQ(ecdf.size(), 3u);
  EXPECT_DOUBLE_EQ(ecdf.median(), 2.0);
}

// Property: F is monotone non-decreasing and quantile is its inverse-ish.
class EcdfProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EcdfProperty, MonotoneAndConsistent) {
  Rng rng{GetParam()};
  Ecdf ecdf;
  for (int i = 0; i < 500; ++i) ecdf.add(rng.uniform(-100.0, 100.0));
  double prev = -1.0;
  for (double x = -120.0; x <= 120.0; x += 7.5) {
    const double f = ecdf.fraction_at_most(x);
    EXPECT_GE(f, prev);
    prev = f;
  }
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double value = ecdf.quantile(q);
    // F(quantile(q)) >= q (within the step granularity of 1/n).
    EXPECT_GE(ecdf.fraction_at_most(value) + 1.0 / 500.0, q);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcdfProperty, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace wtr::stats
