#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"

namespace wtr::stats {
namespace {

TEST(Summary, Empty) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, SingleValueVarianceZero) {
  Summary s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Summary, MergeEqualsSequential) {
  Rng rng{5};
  Summary all;
  Summary left;
  Summary right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-10.0, 50.0);
    all.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  Summary merged = left;
  merged.merge(right);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_NEAR(merged.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(merged.min(), all.min());
  EXPECT_DOUBLE_EQ(merged.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a;
  a.add(1.0);
  a.add(3.0);
  Summary b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Summary, DescribeMentionsCount) {
  Summary s;
  s.add(1.0);
  EXPECT_NE(s.describe().find("n=1"), std::string::npos);
}

}  // namespace
}  // namespace wtr::stats
