// AgentArena: struct-of-arrays agent storage with lazy hydration. Unit
// tests cover the dormant/hydrated lifecycle and the v3 snapshot section;
// the scenario-level tests at the bottom drive the whole wheel + arena
// checkpoint path — interrupt a run while part of the fleet is still
// dormant, resume in a fresh scenario, and require the concatenated record
// stream to match the uninterrupted run exactly, for both the current (v3,
// hydration-flagged) and the legacy (v2, every-agent) snapshot layouts.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "ckpt/snapshot.hpp"
#include "sim/agent_arena.hpp"
#include "tracegen/mno_scenario.hpp"
#include "util/binio.hpp"

namespace wtr::sim {
namespace {

devices::Device make_device(std::int32_t arrival_day, std::int32_t departure_day) {
  devices::Device device;
  device.profile.mobility = devices::MobilityKind::kStationary;
  device.profile.stationary_jitter_m = 100.0;
  device.home_country = "GB";
  device.current_country = "GB";
  device.arrival_day = arrival_day;
  device.departure_day = departure_day;
  return device;
}

TEST(AgentArena, RegisterDropsEmptyWindow) {
  AgentArena arena;
  const auto options = arena.intern_options(AgentOptions{});
  EXPECT_FALSE(arena.register_device(make_device(3, 3), options, stats::Rng{7}));
  EXPECT_FALSE(arena.register_device(make_device(5, 2), options, stats::Rng{7}));
  EXPECT_EQ(arena.size(), 0u);
  const auto first = arena.register_device(make_device(0, 2), options, stats::Rng{7});
  ASSERT_TRUE(first.has_value());
  EXPECT_GE(*first, 0);
  EXPECT_LT(*first, stats::kSecondsPerDay);
  EXPECT_EQ(arena.size(), 1u);
  EXPECT_EQ(arena.first_wake(0), *first);
}

TEST(AgentArena, HydratesLazilyOnFirstAccess) {
  AgentArena arena;
  const auto options = arena.intern_options(AgentOptions{});
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(arena.register_device(make_device(i, i + 2), options,
                                      stats::Rng{100u + static_cast<unsigned>(i)}));
  }
  arena.freeze();
  EXPECT_TRUE(arena.frozen());
  EXPECT_EQ(arena.hydrated_count(), 0u);
  EXPECT_FALSE(arena.hydrated(1));

  DeviceAgent& agent = arena.agent(1);
  EXPECT_TRUE(arena.hydrated(1));
  EXPECT_EQ(arena.hydrated_count(), 1u);
  EXPECT_FALSE(arena.hydrated(0));
  EXPECT_FALSE(arena.hydrated(2));
  // Repeat access returns the same slot, not a fresh construction.
  EXPECT_EQ(&arena.agent(1), &agent);
  EXPECT_EQ(arena.hydrated_count(), 1u);
}

// A lazily hydrated agent must serialize bit-identically to one constructed
// eagerly at registration time with the same RNG stream — the determinism
// contract the engine's threads=N and resume byte-identity rest on.
TEST(AgentArena, HydrationMatchesEagerConstruction) {
  devices::Device device = make_device(1, 4);
  AgentOptions options;

  stats::Rng eager_rng{42};
  const stats::SimTime eager_first = DeviceAgent::plan_first_wake(device, eager_rng);
  DeviceAgent eager{&device, &options, eager_rng, eager_first};
  util::BinWriter eager_bytes;
  eager.save_state(eager_bytes);

  AgentArena arena;
  const auto id = arena.intern_options(options);
  const auto first = arena.register_device(device, id, stats::Rng{42});
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, eager_first);
  arena.freeze();
  util::BinWriter lazy_bytes;
  arena.agent(0).save_state(lazy_bytes);

  EXPECT_EQ(lazy_bytes.bytes(), eager_bytes.bytes());
}

TEST(AgentArena, ResidentBytesTracksHydration) {
  AgentArena arena;
  const auto options = arena.intern_options(AgentOptions{});
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(arena.register_device(make_device(0, 2), options,
                                      stats::Rng{1u + static_cast<unsigned>(i)}));
  }
  arena.freeze();
  const std::size_t dormant = arena.resident_bytes();
  (void)arena.agent(3);
  (void)arena.agent(5);
  EXPECT_EQ(arena.resident_bytes(), dormant + 2 * sizeof(DeviceAgent));
}

// v3 section round trip with a mixed dormant/hydrated arena: flags and
// per-agent payloads must land on the same agents, dormant agents must stay
// dormant, and re-serializing must reproduce the original bytes.
TEST(AgentArena, SaveRestorePreservesDormancy) {
  auto build = [](AgentArena& arena) {
    const auto options = arena.intern_options(AgentOptions{});
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(arena.register_device(make_device(i, i + 3), options,
                                        stats::Rng{200u + static_cast<unsigned>(i)}));
    }
    arena.freeze();
  };

  AgentArena saved;
  build(saved);
  (void)saved.agent(0);
  (void)saved.agent(2);
  util::BinWriter out;
  saved.save_state(out);

  AgentArena restored;
  build(restored);
  util::BinReader in{out.bytes()};
  restored.restore_state(in);
  EXPECT_TRUE(restored.hydrated(0));
  EXPECT_FALSE(restored.hydrated(1));
  EXPECT_TRUE(restored.hydrated(2));
  EXPECT_FALSE(restored.hydrated(3));
  EXPECT_EQ(restored.hydrated_count(), 2u);

  util::BinWriter round_trip;
  restored.save_state(round_trip);
  EXPECT_EQ(round_trip.bytes(), out.bytes());
}

// ---------------------------------------------------------------------------
// Scenario-level: interrupt/resume through the wheel + arena snapshot
// section, with part of the fleet dormant at the snapshot point.

/// Order-sensitive FNV-1a over the (device, time) identity of every record;
/// checkpointable so the running state rides in snapshots and resumes
/// continue the stream instead of restarting it.
class HashSink final : public RecordSink, public ckpt::Checkpointable {
 public:
  void on_signaling(const signaling::SignalingTransaction& txn, bool) override {
    mix(1, txn.device, static_cast<std::uint64_t>(txn.time));
  }
  void on_cdr(const records::Cdr& cdr) override {
    mix(2, cdr.device, static_cast<std::uint64_t>(cdr.time));
  }
  void on_xdr(const records::Xdr& xdr) override {
    mix(3, xdr.device, static_cast<std::uint64_t>(xdr.time));
  }
  void on_dwell(signaling::DeviceHash device, std::int32_t day, cellnet::Plmn,
                const cellnet::GeoPoint&, double) override {
    mix(4, device, static_cast<std::uint64_t>(static_cast<std::int64_t>(day)));
  }

  void save_state(util::BinWriter& out) const override {
    out.u64(hash_);
    out.u64(records_);
  }
  void restore_state(util::BinReader& in) override {
    hash_ = in.u64();
    records_ = in.u64();
  }

  [[nodiscard]] std::uint64_t hash() const noexcept { return hash_; }
  [[nodiscard]] std::uint64_t records() const noexcept { return records_; }

 private:
  void mix(std::uint64_t tag, std::uint64_t a, std::uint64_t b) noexcept {
    for (const std::uint64_t v : {tag, a, b}) {
      for (int i = 0; i < 8; ++i) {
        hash_ ^= static_cast<std::uint8_t>(v >> (i * 8));
        hash_ *= 1099511628211ull;
      }
    }
    ++records_;
  }

  std::uint64_t hash_ = 14695981039346656037ull;
  std::uint64_t records_ = 0;
};

tracegen::MnoScenarioConfig scenario_config() {
  tracegen::MnoScenarioConfig config;
  config.seed = 77;
  config.total_devices = 400;
  config.days = 6;
  config.build_coverage = false;
  return config;
}

struct ScenarioResult {
  std::uint64_t hash = 0;
  std::uint64_t records = 0;
  std::size_t agents = 0;
  std::size_t hydrated = 0;
  bool interrupted = false;
};

ScenarioResult run_scenario(const tracegen::CheckpointOptions& ckpt,
                            const std::string& resume_path = {}) {
  auto config = scenario_config();
  config.ckpt = ckpt;
  tracegen::MnoScenario scenario{config};
  HashSink sink;
  scenario.engine().register_checkpointable("hash_sink", &sink);
  if (!resume_path.empty()) scenario.resume_from(resume_path);
  scenario.run({&sink});
  return ScenarioResult{sink.hash(), sink.records(), scenario.engine().agent_count(),
                        scenario.engine().agents_hydrated(),
                        scenario.engine().interrupted()};
}

TEST(AgentArenaCkpt, ResumeWithDormantAgentsIsByteIdentical) {
  const ScenarioResult full = run_scenario({});
  // A full run wakes every kept agent at least once (first wake always
  // precedes departure), so the arena ends fully hydrated.
  EXPECT_EQ(full.hydrated, full.agents);

  const std::string path = "test_agent_arena_v3.ckpt";
  tracegen::CheckpointOptions stop;
  stop.path = path;
  stop.stop_after_sim_hours = 30;  // mid day 2 of 6
  const ScenarioResult interrupted = run_scenario(stop);
  EXPECT_TRUE(interrupted.interrupted);
  // The MNO fleet staggers arrivals (tourists, meter cohorts) across the
  // horizon: at day 2 a real part of the fleet must still be dormant —
  // otherwise this test no longer covers the dormant branch.
  EXPECT_LT(interrupted.hydrated, interrupted.agents);
  EXPECT_EQ(ckpt::read_snapshot_versioned(path).version, ckpt::kSnapshotVersion);

  const ScenarioResult resumed = run_scenario({}, path);
  EXPECT_EQ(resumed.hash, full.hash);
  EXPECT_EQ(resumed.records, full.records);
  EXPECT_EQ(resumed.hydrated, full.hydrated);
  std::remove(path.c_str());
}

TEST(AgentArenaCkpt, LegacyV2SnapshotRoundTrips) {
  const ScenarioResult full = run_scenario({});

  const std::string path = "test_agent_arena_v2.ckpt";
  tracegen::CheckpointOptions stop;
  stop.path = path;
  stop.stop_after_sim_hours = 30;
  stop.snapshot_format = 2;
  const ScenarioResult interrupted = run_scenario(stop);
  EXPECT_TRUE(interrupted.interrupted);
  EXPECT_EQ(ckpt::read_snapshot_versioned(path).version, 2u);

  // Resume auto-detects the container version; the v2 agent section
  // hydrates everyone but must produce the same bytes from then on.
  const ScenarioResult resumed = run_scenario({}, path);
  EXPECT_EQ(resumed.hash, full.hash);
  EXPECT_EQ(resumed.records, full.records);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wtr::sim
