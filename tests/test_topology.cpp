#include <gtest/gtest.h>

#include "cellnet/country.hpp"
#include "topology/world.hpp"

namespace wtr::topology {
namespace {

cellnet::RatMask all_rats() { return cellnet::RatMask{0b111}; }

TEST(OperatorRegistry, AddAndLookup) {
  OperatorRegistry registry;
  const auto id = registry.add_mno(cellnet::Plmn{234, 10, 2}, "Test", "GB", all_rats());
  EXPECT_EQ(registry.get(id).name, "Test");
  EXPECT_EQ(registry.by_plmn(cellnet::Plmn{234, 10, 2}), id);
  EXPECT_FALSE(registry.by_plmn(cellnet::Plmn{214, 7, 2}).has_value());
}

TEST(OperatorRegistry, MvnoInheritsHost) {
  OperatorRegistry registry;
  const auto host = registry.add_mno(cellnet::Plmn{234, 10, 2}, "Host", "GB", all_rats());
  const auto mvno = registry.add_mvno(cellnet::Plmn{235, 50, 2}, "Virtual", host);
  EXPECT_EQ(registry.get(mvno).country_iso, "GB");
  EXPECT_EQ(registry.get(mvno).kind, OperatorKind::kMvno);
  EXPECT_EQ(registry.radio_network_of(mvno), host);
  EXPECT_EQ(registry.radio_network_of(host), host);
}

TEST(OperatorRegistry, MnosInCountryExcludesMvnos) {
  OperatorRegistry registry;
  const auto a = registry.add_mno(cellnet::Plmn{234, 10, 2}, "A", "GB", all_rats());
  registry.add_mvno(cellnet::Plmn{235, 50, 2}, "V", a);
  registry.add_mno(cellnet::Plmn{214, 1, 2}, "B", "ES", all_rats());
  const auto gb = registry.mnos_in_country("GB");
  ASSERT_EQ(gb.size(), 1u);
  EXPECT_EQ(gb.front(), a);
}

TEST(Agreements, DirectionalByDefault) {
  RoamingAgreementGraph graph;
  AgreementTerms terms{all_rats(), BreakoutType::kHomeRouted};
  graph.add(1, 2, terms);
  EXPECT_TRUE(graph.find(1, 2).has_value());
  EXPECT_FALSE(graph.find(2, 1).has_value());
}

TEST(Agreements, BilateralAddsBoth) {
  RoamingAgreementGraph graph;
  graph.add_bilateral(1, 2, AgreementTerms{all_rats(), BreakoutType::kLocalBreakout});
  EXPECT_TRUE(graph.find(1, 2).has_value());
  EXPECT_TRUE(graph.find(2, 1).has_value());
  EXPECT_EQ(graph.find(1, 2)->breakout, BreakoutType::kLocalBreakout);
}

TEST(Agreements, AllowsChecksRatScope) {
  RoamingAgreementGraph graph;
  AgreementTerms terms;
  terms.allowed_rats.set(cellnet::Rat::kTwoG);
  graph.add(1, 2, terms);
  EXPECT_TRUE(graph.allows(1, 2, cellnet::Rat::kTwoG));
  EXPECT_FALSE(graph.allows(1, 2, cellnet::Rat::kFourG));
  EXPECT_FALSE(graph.allows(1, 3, cellnet::Rat::kTwoG));
}

TEST(Agreements, PartnersSorted) {
  RoamingAgreementGraph graph;
  AgreementTerms terms{all_rats(), BreakoutType::kHomeRouted};
  graph.add(1, 5, terms);
  graph.add(1, 3, terms);
  graph.add(1, 3, terms);  // duplicate overwrite, not re-listed
  const auto partners = graph.partners_of(1);
  EXPECT_EQ(partners, (std::vector<OperatorId>{3, 5}));
  EXPECT_TRUE(graph.partners_of(9).empty());
}

TEST(Hubs, SharedHubResolves) {
  HubRegistry hubs;
  RoamingAgreementGraph bilateral;
  const auto hub = hubs.add_hub("H", AgreementTerms{all_rats(), BreakoutType::kIpxHubBreakout});
  hubs.add_member(hub, 1);
  hubs.add_member(hub, 2);
  const auto resolved = hubs.resolve(bilateral, 1, 2);
  EXPECT_EQ(resolved.path, RoamingPath::kViaHub);
  EXPECT_TRUE(resolved.terms.allowed_rats.has(cellnet::Rat::kFourG));
}

TEST(Hubs, PeeringResolvesOneHop) {
  HubRegistry hubs;
  RoamingAgreementGraph bilateral;
  AgreementTerms a_terms;
  a_terms.allowed_rats = all_rats();
  AgreementTerms b_terms;
  b_terms.allowed_rats.set(cellnet::Rat::kTwoG);
  b_terms.allowed_rats.set(cellnet::Rat::kThreeG);
  const auto ha = hubs.add_hub("A", a_terms);
  const auto hb = hubs.add_hub("B", b_terms);
  hubs.add_member(ha, 1);
  hubs.add_member(hb, 2);
  EXPECT_EQ(hubs.resolve(bilateral, 1, 2).path, RoamingPath::kNone);
  hubs.peer(ha, hb);
  const auto resolved = hubs.resolve(bilateral, 1, 2);
  EXPECT_EQ(resolved.path, RoamingPath::kViaHubPeering);
  // Terms intersect: no 4G via the peering.
  EXPECT_FALSE(resolved.terms.allowed_rats.has(cellnet::Rat::kFourG));
  EXPECT_TRUE(resolved.terms.allowed_rats.has(cellnet::Rat::kTwoG));
}

TEST(Hubs, BilateralTakesPrecedence) {
  HubRegistry hubs;
  RoamingAgreementGraph bilateral;
  const auto hub = hubs.add_hub("H", AgreementTerms{all_rats(), BreakoutType::kIpxHubBreakout});
  hubs.add_member(hub, 1);
  hubs.add_member(hub, 2);
  AgreementTerms direct;
  direct.allowed_rats.set(cellnet::Rat::kTwoG);
  direct.breakout = BreakoutType::kHomeRouted;
  bilateral.add(1, 2, direct);
  const auto resolved = hubs.resolve(bilateral, 1, 2);
  EXPECT_EQ(resolved.path, RoamingPath::kDirect);
  EXPECT_EQ(resolved.terms.breakout, BreakoutType::kHomeRouted);
}

TEST(Hubs, MergeTermsDegradesBreakout) {
  AgreementTerms a{all_rats(), BreakoutType::kHomeRouted};
  AgreementTerms b{all_rats(), BreakoutType::kLocalBreakout};
  EXPECT_EQ(merge_terms(a, b).breakout, BreakoutType::kIpxHubBreakout);
  EXPECT_EQ(merge_terms(a, a).breakout, BreakoutType::kHomeRouted);
}

TEST(Steering, CandidatesFilteredAndSorted) {
  WorldConfig config;
  config.build_coverage = false;
  const auto world = World::build(config);
  const auto& wk = world.well_known();
  const auto candidates = world.steering().candidates(
      world.operators(), world.bilateral(), world.hubs(), wk.es_hmno, "GB");
  ASSERT_FALSE(candidates.empty());
  // ES steering prefers the first GB MNO with weight 6.
  EXPECT_EQ(candidates.front().visited, world.operators().mnos_in_country("GB").front());
  EXPECT_GT(candidates.front().weight, candidates.back().weight);
  for (const auto& candidate : candidates) {
    EXPECT_NE(candidate.roaming.path, RoamingPath::kNone);
  }
}

TEST(Steering, PickRespectsRatFilter) {
  WorldConfig config;
  config.build_coverage = false;
  const auto world = World::build(config);
  stats::Rng rng{1};
  const auto picked = world.steering().pick(
      world.operators(), world.bilateral(), world.hubs(),
      world.well_known().es_hmno, "FR", cellnet::Rat::kFourG, rng);
  ASSERT_TRUE(picked.has_value());
  EXPECT_TRUE(picked->roaming.terms.allowed_rats.has(cellnet::Rat::kFourG));
}

class WorldTest : public ::testing::Test {
 protected:
  static const World& world() {
    static const World w = [] {
      WorldConfig config;
      config.build_coverage = true;
      return World::build(config);
    }();
    return w;
  }
};

TEST_F(WorldTest, WellKnownOperatorsExist) {
  const auto& wk = world().well_known();
  EXPECT_EQ(world().operators().get(wk.es_hmno).plmn, (cellnet::Plmn{214, 7, 2}));
  EXPECT_EQ(world().operators().get(wk.nl_iot_provisioner).plmn,
            (cellnet::Plmn{204, 4, 2}));
  EXPECT_EQ(world().operators().get(wk.uk_mno).country_iso, "GB");
  EXPECT_EQ(wk.uk_mvnos.size(), 3u);
  for (const auto mvno : wk.uk_mvnos) {
    EXPECT_EQ(world().operators().radio_network_of(mvno), wk.uk_mno);
  }
}

TEST_F(WorldTest, EveryCountryHasMnos) {
  for (const auto& country : cellnet::all_countries()) {
    EXPECT_GE(world().operators().mnos_in_country(country.iso).size(), 3u)
        << country.iso;
  }
}

TEST_F(WorldTest, TwoGSunsetCountries) {
  for (const auto id : world().operators().mnos_in_country("JP")) {
    EXPECT_FALSE(world().operators().get(id).deployed_rats.has(cellnet::Rat::kTwoG));
  }
  for (const auto id : world().operators().mnos_in_country("GB")) {
    EXPECT_TRUE(world().operators().get(id).deployed_rats.has(cellnet::Rat::kTwoG));
  }
}

TEST_F(WorldTest, IntraEuRoamingIsHomeRoutedBilateral) {
  const auto es = world().operators().mnos_in_country("ES").front();
  const auto fr = world().operators().mnos_in_country("FR").front();
  const auto resolved = world().resolve_roaming(es, fr);
  EXPECT_EQ(resolved.path, RoamingPath::kDirect);
  EXPECT_EQ(resolved.terms.breakout, BreakoutType::kHomeRouted);
}

TEST_F(WorldTest, GlobalReachViaHubs) {
  // Any two MNOs anywhere must have some commercial path (possibly hub
  // peering) — the premise of the global IoT SIM.
  const auto& wk = world().well_known();
  for (const auto* iso : {"AU", "JP", "KE", "BR", "US", "VN"}) {
    const auto visited = world().operators().mnos_in_country(iso).front();
    const auto resolved = world().resolve_roaming(wk.es_hmno, visited);
    EXPECT_NE(resolved.path, RoamingPath::kNone) << iso;
  }
}

TEST_F(WorldTest, CoverageGridsBuilt) {
  const auto& wk = world().well_known();
  EXPECT_TRUE(world().coverage().has_grid(wk.uk_mno));
  EXPECT_GT(world().coverage().total_sectors(), 10'000u);
  // MVNOs have no grid of their own.
  EXPECT_FALSE(world().coverage().has_grid(wk.uk_mvnos.front()));
}

TEST_F(WorldTest, DeterministicBuild) {
  WorldConfig config;
  config.build_coverage = false;
  const auto a = World::build(config);
  const auto b = World::build(config);
  EXPECT_EQ(a.operators().size(), b.operators().size());
  EXPECT_EQ(a.bilateral().size(), b.bilateral().size());
}

TEST(Breakout, Names) {
  EXPECT_EQ(breakout_name(BreakoutType::kHomeRouted), "home-routed");
  EXPECT_EQ(breakout_name(BreakoutType::kLocalBreakout), "local-breakout");
  EXPECT_EQ(breakout_name(BreakoutType::kIpxHubBreakout), "ipx-hub-breakout");
  EXPECT_EQ(roaming_path_name(RoamingPath::kViaHub), "via-hub");
}

}  // namespace
}  // namespace wtr::topology
