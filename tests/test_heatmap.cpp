#include "stats/heatmap.hpp"

#include <gtest/gtest.h>

namespace wtr::stats {
namespace {

Heatmap sample() {
  Heatmap h;
  h.add("m2m", "I:H", 70);
  h.add("m2m", "H:H", 30);
  h.add("smart", "I:H", 10);
  h.add("smart", "H:H", 90);
  return h;
}

TEST(Heatmap, CountsAndTotals) {
  const auto h = sample();
  EXPECT_EQ(h.at("m2m", "I:H"), 70u);
  EXPECT_EQ(h.at("m2m", "missing"), 0u);
  EXPECT_EQ(h.at("missing", "I:H"), 0u);
  EXPECT_EQ(h.row_total("m2m"), 100u);
  EXPECT_EQ(h.col_total("I:H"), 80u);
  EXPECT_EQ(h.total(), 200u);
}

TEST(Heatmap, Shares) {
  const auto h = sample();
  EXPECT_DOUBLE_EQ(h.row_share("m2m", "I:H"), 0.7);
  EXPECT_DOUBLE_EQ(h.col_share("m2m", "I:H"), 70.0 / 80.0);
  EXPECT_DOUBLE_EQ(h.global_share("smart", "H:H"), 0.45);
  EXPECT_DOUBLE_EQ(h.row_share("missing", "I:H"), 0.0);
}

TEST(Heatmap, OrderingByTotal) {
  const auto h = sample();
  const auto rows = h.rows_by_total();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], "m2m");  // equal totals broken alphabetically? both 100
  const auto cols = h.cols_by_total();
  EXPECT_EQ(cols[0], "H:H");  // 120 > 80
}

TEST(Heatmap, GroupMinorColumns) {
  Heatmap h;
  h.add("r", "big", 98);
  h.add("r", "tiny1", 1);
  h.add("r", "tiny2", 1);
  const auto grouped = h.with_minor_cols_grouped(0.05, "Other");
  EXPECT_EQ(grouped.at("r", "big"), 98u);
  EXPECT_EQ(grouped.at("r", "Other"), 2u);
  EXPECT_EQ(grouped.at("r", "tiny1"), 0u);
  EXPECT_EQ(grouped.total(), 100u);
}

TEST(Heatmap, GroupingKeepsRowTotals) {
  Heatmap h;
  h.add("a", "x", 50);
  h.add("a", "y", 1);
  h.add("b", "x", 40);
  h.add("b", "z", 9);
  const auto grouped = h.with_minor_cols_grouped(0.05, "Other");
  EXPECT_EQ(grouped.row_total("a"), h.row_total("a"));
  EXPECT_EQ(grouped.row_total("b"), h.row_total("b"));
}

TEST(Heatmap, EmptyHeatmap) {
  Heatmap h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.global_share("a", "b"), 0.0);
  EXPECT_TRUE(h.rows_by_total().empty());
}

}  // namespace
}  // namespace wtr::stats
