// X5 (extension) — the Fig. 1 breakout configurations, quantified: RTT of
// the user-plane path for a Spanish global IoT SIM under home-routed, local
// breakout and IPX-hub breakout, across near and far visited countries.
// Reproduces the §3.2 aside that HR roaming to far destinations (Spain →
// Australia) carries "serious performance penalties", which is why the M2M
// platform varies configurations per vertical.

#include "bench_common.hpp"

#include "topology/path_model.hpp"

int main() {
  using namespace wtr;

  topology::WorldConfig config;
  config.build_coverage = false;
  const auto world = topology::World::build(config);
  const topology::PathModel model{world};
  const auto es = world.well_known().es_hmno;

  std::cout << io::figure_banner(
      "X5", "Data-path RTT per roaming breakout configuration (ES global IoT SIM)");

  io::Table table{{"visited", "distance (km)", "HR RTT (ms)", "LBO RTT (ms)",
                   "IHBO RTT (ms)", "IHBO egress"}};
  for (const auto* iso : {"PT", "GB", "DE", "TR", "US", "BR", "IN", "JP", "AU"}) {
    const auto visited = world.operators().mnos_in_country(iso).front();
    const auto hr = model.data_path(es, visited, topology::BreakoutType::kHomeRouted);
    const auto lbo = model.data_path(es, visited, topology::BreakoutType::kLocalBreakout);
    const auto ihbo =
        model.data_path(es, visited, topology::BreakoutType::kIpxHubBreakout);
    table.add_row({iso, io::format_fixed(model.operator_distance_km(es, visited), 0),
                   io::format_fixed(hr.rtt_ms, 1), io::format_fixed(lbo.rtt_ms, 1),
                   io::format_fixed(ihbo.rtt_ms, 1), ihbo.egress_iso});
  }
  std::cout << table.render();

  // The headline example and the structural claims.
  const auto au = world.operators().mnos_in_country("AU").front();
  const auto hr_au = model.data_path(es, au, topology::BreakoutType::kHomeRouted);
  const auto lbo_au = model.data_path(es, au, topology::BreakoutType::kLocalBreakout);
  io::Table claims{{"claim", "holds", "measured"}};
  claims.add_row({"HR Spain->Australia pays a heavy penalty vs LBO",
                  hr_au.rtt_ms > 5.0 * lbo_au.rtt_ms ? "yes" : "NO",
                  io::format_fixed(hr_au.rtt_ms, 0) + "ms vs " +
                      io::format_fixed(lbo_au.rtt_ms, 0) + "ms"});
  bool ordered = true;
  for (const auto* iso : {"GB", "US", "AU", "JP"}) {
    const auto visited = world.operators().mnos_in_country(iso).front();
    const auto hr = model.data_path(es, visited, topology::BreakoutType::kHomeRouted);
    const auto lbo = model.data_path(es, visited, topology::BreakoutType::kLocalBreakout);
    const auto ihbo =
        model.data_path(es, visited, topology::BreakoutType::kIpxHubBreakout);
    if (!(lbo.rtt_ms <= ihbo.rtt_ms + 1e-9 && ihbo.rtt_ms <= hr.rtt_ms + 1e-9)) {
      ordered = false;
    }
  }
  claims.add_row({"LBO <= IHBO <= HR everywhere sampled", ordered ? "yes" : "NO", "-"});

  // Effective path for the default (EU) configuration is HR, §2.1.
  const auto gb = world.operators().mnos_in_country("GB").front();
  const auto effective = model.effective_data_path(es, gb);
  claims.add_row({"intra-EU default is home-routed",
                  effective && effective->breakout == topology::BreakoutType::kHomeRouted
                      ? "yes"
                      : "NO",
                  effective ? std::string(topology::breakout_name(effective->breakout))
                            : "none"});
  std::cout << '\n' << claims.render();
  return 0;
}
