// S1 — robustness sweep: the reproduction's headline shares across
// population scales and seeds. EXPERIMENTS.md's deviation note D1 claims
// share-type metrics are scale-free; this harness is the evidence.

#include "bench_common.hpp"

namespace {

using namespace wtr;

struct Row {
  std::string label;
  double smart = 0.0;
  double m2m = 0.0;
  double inbound_m2m = 0.0;   // share of I:H devices that are m2m
  double m2m_inbound = 0.0;   // share of m2m devices that are I:H
};

Row measure(std::size_t devices, std::uint64_t seed, unsigned threads,
            obs::RunObservation& observation) {
  tracegen::MnoScenarioConfig config;
  config.seed = seed;
  config.total_devices = devices;
  config.threads = threads;
  config.obs = observation.view();
  tracegen::MnoScenario scenario{config};
  std::cerr << "[bench] devices=" << devices << " seed=" << seed << "...\n";
  core::CatalogAccumulator accumulator{{scenario.observer_plmn(),
                                        scenario.family_plmns()}};
  scenario.run({&accumulator});
  const auto catalog = accumulator.finalize();
  const auto population = core::run_census(catalog, scenario.observer_plmn(),
                                           scenario.mvno_plmns(), scenario.tac_catalog());
  const auto heatmap = core::class_vs_label(population);
  Row row;
  row.label = io::format_count(devices) + " / seed " + std::to_string(seed);
  row.smart = population.classification.share_of(core::ClassLabel::kSmart);
  row.m2m = population.classification.share_of(core::ClassLabel::kM2M);
  row.inbound_m2m = heatmap.col_share("m2m", "I:H");
  row.m2m_inbound = heatmap.row_share("m2m", "I:H");
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wtr;
  const unsigned threads = bench::threads_from_args(argc, argv);

  std::cout << io::figure_banner("S1", "Share stability across scale and seed");

  // One observation spans the whole sweep: phases and probe samples
  // accumulate across the five runs, which is exactly the "what does a
  // sweep cost" view the manifest is for.
  obs::RunObservation observation;
  io::Table table{{"population / seed", "smart", "m2m", "I:H that is m2m",
                   "m2m that is I:H", "paper"}};
  std::vector<Row> rows;
  for (const std::size_t devices : {2'000, 4'000, 8'000}) {
    rows.push_back(measure(devices, 2019, threads, observation));
  }
  for (const std::uint64_t seed : {7ULL, 1234ULL}) {
    rows.push_back(measure(4'000, seed, threads, observation));
  }
  for (const auto& row : rows) {
    table.add_row({row.label, io::format_percent(row.smart), io::format_percent(row.m2m),
                   io::format_percent(row.inbound_m2m),
                   io::format_percent(row.m2m_inbound), ""});
  }
  table.add_row({"(paper)", "62.0%", "26.0%", "71.1%", "74.7%", "<-"});
  std::cout << table.render();

  // Max spread across runs, per metric.
  auto spread = [&](auto proj) {
    double lo = 1.0;
    double hi = 0.0;
    for (const auto& row : rows) {
      lo = std::min(lo, proj(row));
      hi = std::max(hi, proj(row));
    }
    return hi - lo;
  };
  io::Table spreads{{"metric", "max spread across runs"}};
  spreads.add_row({"smart share", io::format_percent(spread([](const Row& r) { return r.smart; }))});
  spreads.add_row({"m2m share", io::format_percent(spread([](const Row& r) { return r.m2m; }))});
  spreads.add_row({"I:H m2m composition",
                   io::format_percent(spread([](const Row& r) { return r.inbound_m2m; }))});
  std::cout << '\n' << spreads.render()
            << "(Spreads of a few points confirm the D1 claim: shares, not"
               " absolute counts, carry the reproduction.)\n";

  auto manifest = bench::make_manifest("s1", 2019, 8'000, observation);
  manifest.add_result("runs", static_cast<std::uint64_t>(rows.size()));
  for (const auto& row : rows) {
    manifest.add_result("smart_share[" + row.label + "]", row.smart);
    manifest.add_result("m2m_share[" + row.label + "]", row.m2m);
  }
  manifest.add_result("smart_share_spread", spread([](const Row& r) { return r.smart; }));
  manifest.add_result("m2m_share_spread", spread([](const Row& r) { return r.m2m; }));
  manifest.add_result("engine_threads", static_cast<std::uint64_t>(threads));
  bench::write_manifest(manifest);
  return 0;
}
