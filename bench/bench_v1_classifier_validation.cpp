// V1 (reproduction-only experiment) — classifier validation against the
// simulator's ground truth, including the A1 ablation: APN keywords alone
// vs the full pipeline with device-property propagation (§4.3 argues
// propagation is required because ~21% of devices expose no APN).

#include "bench_common.hpp"

#include "core/baseline_classifier.hpp"
#include "core/classifier_validation.hpp"

namespace {

void print_report(const char* title, const wtr::core::ValidationReport& report) {
  using namespace wtr;
  std::cout << '\n' << title << '\n';
  io::Table table{{"metric", "value"}};
  table.add_row({"devices matched", io::format_count(report.matched)});
  table.add_row({"lenient accuracy (maybe==m2m)", io::format_percent(report.lenient_accuracy)});
  table.add_row({"strict accuracy", io::format_percent(report.strict_accuracy)});
  table.add_row({"m2m precision", io::format_percent(report.m2m_precision)});
  table.add_row({"m2m recall", io::format_percent(report.m2m_recall)});
  table.add_row({"smart precision", io::format_percent(report.smart_precision)});
  table.add_row({"smart recall", io::format_percent(report.smart_recall)});
  table.add_row({"feat precision", io::format_percent(report.feat_precision)});
  table.add_row({"feat recall", io::format_percent(report.feat_recall)});
  std::cout << table.render();

  io::Table confusion{{"true \\ predicted", "smart", "feat", "m2m", "m2m-maybe"}};
  const std::array<const char*, 3> names{"smart", "feat", "m2m"};
  for (std::size_t t = 0; t < names.size(); ++t) {
    std::vector<std::string> cells{names[t]};
    for (std::size_t p = 0; p < 4; ++p) {
      cells.push_back(io::format_count(report.confusion[t][p]));
    }
    confusion.add_row(std::move(cells));
  }
  std::cout << confusion.render();
}

}  // namespace

int main() {
  using namespace wtr;

  const auto run = bench::run_mno_scenario();
  const auto truth = tracegen::class_truth(run.scenario->ground_truth());

  std::cout << io::figure_banner("V1", "Classifier validation vs simulator ground truth");
  const auto full = core::validate_classification(run.population, truth);
  print_report("Full pipeline (keywords -> APNs -> device-property propagation):", full);

  // A1 ablation: disable stage-3 propagation and re-classify.
  core::ClassifierConfig ablated_config;
  ablated_config.propagate_device_properties = false;
  const core::DeviceClassifier ablated{run.scenario->tac_catalog(), ablated_config};
  auto ablated_population = run.population;  // copy summaries/labels
  ablated_population.classification = ablated.classify(ablated_population.summaries);
  ablated_population.classes = ablated_population.classification.labels;
  const auto no_prop = core::validate_classification(ablated_population, truth);
  print_report("A1 ablation — APN keywords only (no propagation):", no_prop);

  // Baseline: the Shafiq-style device-property classifier the paper calls
  // "naive" in §4.3 — curated vendor list + GSMA labels, no APNs.
  const core::BaselineVendorClassifier baseline{run.scenario->tac_catalog()};
  auto baseline_population = run.population;
  baseline_population.classification = baseline.classify(baseline_population.summaries);
  baseline_population.classes = baseline_population.classification.labels;
  const auto baseline_report = core::validate_classification(baseline_population, truth);
  print_report("Baseline — device properties only (Shafiq-style, §4.3's naive approach):",
               baseline_report);

  io::Table delta{{"metric", "full pipeline", "keywords only", "vendor baseline"}};
  delta.add_row({"m2m recall", io::format_percent(full.m2m_recall),
                 io::format_percent(no_prop.m2m_recall),
                 io::format_percent(baseline_report.m2m_recall)});
  delta.add_row({"m2m precision", io::format_percent(full.m2m_precision),
                 io::format_percent(no_prop.m2m_precision),
                 io::format_percent(baseline_report.m2m_precision)});
  delta.add_row({"strict accuracy", io::format_percent(full.strict_accuracy),
                 io::format_percent(no_prop.strict_accuracy),
                 io::format_percent(baseline_report.strict_accuracy)});
  delta.add_row({"m2m devices found",
                 io::format_count(run.population.classification.count_of(
                     core::ClassLabel::kM2M)),
                 io::format_count(ablated_population.classification.count_of(
                     core::ClassLabel::kM2M)),
                 io::format_count(baseline_population.classification.count_of(
                     core::ClassLabel::kM2M))});
  std::cout << "\nSummary — pipeline vs its ablation vs the baseline:\n" << delta.render();
  return 0;
}
