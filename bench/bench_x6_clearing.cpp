// X6 (extension) — wholesale clearing (§2.1/§9): the UK MNO's settlement
// statements against the home operators of its inbound roamers, the mirror
// accrual run from the Dutch IoT provisioner's side, and the §2.1
// record-comparison (reconciliation) between the two.

#include "bench_common.hpp"

#include "core/clearing.hpp"

int main() {
  using namespace wtr;

  tracegen::MnoScenarioConfig config;
  config.seed = 2019;
  config.total_devices = bench::scale_override(10'000);
  tracegen::MnoScenario scenario{config};
  std::cerr << "[bench] simulating " << scenario.device_count() << " devices...\n";

  const auto nl_plmn = cellnet::Plmn{204, 4, 2};

  // Both parties run their books over the same simulated usage.
  core::ClearingHouse uk_books{{.self = scenario.observer_plmn(),
                                .family = scenario.family_plmns(),
                                .side = core::ClearingHouse::Side::kVisited}};
  core::ClearingHouse nl_books{{.self = nl_plmn,
                                .family = {nl_plmn},
                                .side = core::ClearingHouse::Side::kHome}};
  scenario.run({&uk_books, &nl_books});

  std::cout << io::figure_banner(
      "X6", "Wholesale clearing: the UK MNO bills its roaming partners");

  io::Table table{{"rank", "partner (home op)", "devices", "data (MB)",
                   "voice (min)", "amount"}};
  int rank = 0;
  for (const auto& statement : uk_books.statements()) {
    if (++rank > 12) break;
    table.add_row({std::to_string(rank), statement.partner.to_string(),
                   io::format_count(statement.devices),
                   io::format_fixed(statement.data_mb, 1),
                   io::format_fixed(statement.voice_minutes, 1),
                   io::format_fixed(statement.amount, 1)});
  }
  std::cout << table.render();
  std::cout << "\nTotal inbound-roaming receivables: "
            << io::format_fixed(uk_books.total_billed(), 1)
            << " (currency units; Dutch IoT SIMs dominate the device count,"
               " smartphones the amount)\n";

  // The §2.1 comparison for the UK ↔ NL-provisioner pair.
  const auto uk_claims = uk_books.statements();
  const auto nl_accruals = nl_books.statements();
  const auto report = core::reconcile_pair(uk_claims, nl_plmn, nl_accruals,
                                           scenario.observer_plmn());
  io::Table recon{{"reconciliation (UK claims vs NL accruals)", "value"}};
  recon.add_row({"both sides present", report.both_sides_present ? "yes" : "NO"});
  recon.add_row({"UK claim", io::format_fixed(report.claim_amount, 2)});
  recon.add_row({"NL accrual", io::format_fixed(report.accrual_amount, 2)});
  recon.add_row({"gap", io::format_fixed(report.amount_gap, 6)});
  recon.add_row({"clean", report.clean() ? "yes" : "NO"});
  std::cout << '\n' << recon.render()
            << "(A lossless record exchange reconciles exactly; in the real"
               " ecosystem TAP disputes arise from dropped/duplicated records"
               " — inject them by filtering one sink's stream.)\n";
  return 0;
}
