// Figure 12 — connected cars vs smart meters among inbound roamers:
// mobility (left), signaling (center), data usage (right), with inbound
// smartphones as the reference the paper compares against.

#include "bench_common.hpp"

#include "core/vertical_analysis.hpp"

namespace {

void print_panel(const char* title, const std::map<std::string, wtr::stats::Ecdf>& groups,
                 int decimals) {
  std::cout << '\n' << title << '\n';
  wtr::io::Table table{{"group", "n", "p50", "p90", "mean"}};
  for (const auto* key : {"connected-car", "smart-meter", "smartphone"}) {
    const auto it = groups.find(key);
    if (it == groups.end() || it->second.empty()) continue;
    table.add_row({key, wtr::io::format_count(it->second.size()),
                   wtr::io::format_fixed(it->second.quantile(0.5), decimals),
                   wtr::io::format_fixed(it->second.quantile(0.9), decimals),
                   wtr::io::format_fixed(it->second.mean(), decimals)});
  }
  std::cout << table.render();
}

}  // namespace

int main() {
  using namespace wtr;

  const auto run = bench::run_mno_scenario();
  const auto figure = core::vertical_figure(run.population);

  std::cout << io::figure_banner(
      "Fig. 12", "Connected cars and smart meters traffic patterns (inbound)");
  print_panel("Mobility — radius of gyration (m):", figure.gyration_m, 0);
  print_panel("Signaling events per active day:", figure.signaling_per_day, 1);
  print_panel("Data bytes per active day:", figure.bytes_per_day, 0);

  auto median = [&](const std::map<std::string, stats::Ecdf>& groups, const char* key) {
    const auto it = groups.find(key);
    return it == groups.end() || it->second.empty() ? 0.0 : it->second.median();
  };
  io::Table claims{{"claim (paper §7.2)", "holds", "measured"}};
  const double car_gyr = median(figure.gyration_m, "connected-car");
  const double meter_gyr = median(figure.gyration_m, "smart-meter");
  claims.add_row({"cars are mobile, meters stationary", car_gyr > 10.0 * std::max(1.0, meter_gyr)
                      ? "yes" : "NO",
                  io::format_fixed(car_gyr, 0) + "m vs " + io::format_fixed(meter_gyr, 0) +
                      "m median gyration"});
  const double car_sig = median(figure.signaling_per_day, "connected-car");
  const double meter_sig = median(figure.signaling_per_day, "smart-meter");
  claims.add_row({"cars generate much more signaling", car_sig > 3.0 * meter_sig ? "yes" : "NO",
                  io::format_fixed(car_sig, 1) + " vs " + io::format_fixed(meter_sig, 1)});
  const double car_bytes = median(figure.bytes_per_day, "connected-car");
  const double meter_bytes = median(figure.bytes_per_day, "smart-meter");
  claims.add_row({"cars move much more data", car_bytes > 10.0 * meter_bytes ? "yes" : "NO",
                  io::format_fixed(car_bytes, 0) + " vs " + io::format_fixed(meter_bytes, 0)});
  const double phone_sig = median(figure.signaling_per_day, "smartphone");
  claims.add_row({"cars resemble inbound smartphones",
                  phone_sig > 0 && car_sig > 0.3 * phone_sig ? "yes" : "NO",
                  io::format_fixed(car_sig, 1) + " vs smartphone " +
                      io::format_fixed(phone_sig, 1)});
  std::cout << '\n' << claims.render();
  return 0;
}
