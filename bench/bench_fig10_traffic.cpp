// Figure 10 — traffic analysis for in-roaming and native devices:
// signaling events (left), voice calls (center), data volume (right),
// per device class and roaming status.

#include "bench_common.hpp"

#include "core/traffic_metrics.hpp"

namespace {

void print_panel(const char* title, const std::map<std::string, wtr::stats::Ecdf>& groups,
                 int decimals) {
  std::cout << '\n' << title << '\n';
  wtr::io::Table table{{"group", "n", "p25", "p50", "p90", "mean"}};
  for (const auto& [key, ecdf] : groups) {
    if (ecdf.empty()) continue;
    table.add_row({key, wtr::io::format_count(ecdf.size()),
                   wtr::io::format_fixed(ecdf.quantile(0.25), decimals),
                   wtr::io::format_fixed(ecdf.quantile(0.5), decimals),
                   wtr::io::format_fixed(ecdf.quantile(0.9), decimals),
                   wtr::io::format_fixed(ecdf.mean(), decimals)});
  }
  std::cout << table.render();
}

}  // namespace

int main() {
  using namespace wtr;

  const auto run = bench::run_mno_scenario();
  const auto figure = core::traffic_figure(run.population);

  std::cout << io::figure_banner("Fig. 10", "Traffic for in-roaming and native devices");
  print_panel("Signaling events per active day:", figure.signaling_per_day, 1);
  print_panel("Voice calls per active day:", figure.calls_per_day, 2);
  print_panel("Data bytes per active day:", figure.bytes_per_day, 0);

  // The paper's qualitative claims, verified as orderings.
  auto median = [&](const std::map<std::string, stats::Ecdf>& groups, const char* key) {
    const auto it = groups.find(key);
    return it == groups.end() || it->second.empty() ? 0.0 : it->second.median();
  };
  io::Table claims{{"claim (paper §6.2)", "holds", "measured"}};
  const double m2m_sig = median(figure.signaling_per_day, "m2m/inbound");
  const double smart_sig = median(figure.signaling_per_day, "smart/native");
  claims.add_row({"m2m signals less than smartphones", m2m_sig < smart_sig ? "yes" : "NO",
                  io::format_fixed(m2m_sig, 1) + " vs " + io::format_fixed(smart_sig, 1)});
  const double feat_sig = median(figure.signaling_per_day, "feat/native");
  claims.add_row({"feature phones signal less than m2m",
                  feat_sig < m2m_sig + 3.0 ? "yes" : "NO",
                  io::format_fixed(feat_sig, 1) + " vs " + io::format_fixed(m2m_sig, 1)});
  const double m2m_calls = median(figure.calls_per_day, "m2m/native");
  const double smart_calls = median(figure.calls_per_day, "smart/native");
  claims.add_row({"m2m voice is rare vs smartphones",
                  m2m_calls < 0.5 * smart_calls ? "yes" : "NO",
                  io::format_fixed(m2m_calls, 2) + " vs " +
                      io::format_fixed(smart_calls, 2) + " median calls/day"});
  claims.add_row({"smartphones do make calls", smart_calls > 1.0 ? "yes" : "NO",
                  io::format_fixed(smart_calls, 2) + " median calls/day"});
  const double inbound_smart_bytes = median(figure.bytes_per_day, "smart/inbound");
  const double native_smart_bytes = median(figure.bytes_per_day, "smart/native");
  claims.add_row({"inbound smartphones move less data (bill shock)",
                  inbound_smart_bytes < native_smart_bytes ? "yes" : "NO",
                  io::format_fixed(inbound_smart_bytes, 0) + " vs " +
                      io::format_fixed(native_smart_bytes, 0)});
  const double inbound_m2m_bytes = median(figure.bytes_per_day, "m2m/inbound");
  const double inbound_feat_bytes = median(figure.bytes_per_day, "feat/inbound");
  claims.add_row({"inbound m2m data is tiny, like inbound feat",
                  inbound_m2m_bytes < native_smart_bytes / 100.0 ? "yes" : "NO",
                  io::format_fixed(inbound_m2m_bytes, 0) + " vs feat " +
                      io::format_fixed(inbound_feat_bytes, 0)});
  std::cout << '\n' << claims.render();
  return 0;
}
