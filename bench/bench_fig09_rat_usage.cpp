// Figure 9 — device share per RAT combination for connectivity (left),
// data interfaces (center) and voice interfaces (right).

#include "bench_common.hpp"

#include "core/rat_usage.hpp"

namespace {

void print_panel(const char* title, const wtr::stats::Heatmap& panel) {
  std::cout << '\n' << title << '\n';
  wtr::io::Table table{
      {"class", "none", "2G", "3G", "2G+3G", "4G", "2G+4G", "3G+4G", "2G+3G+4G"}};
  for (const auto* device_class : {"m2m", "smart", "feat"}) {
    std::vector<std::string> cells{device_class};
    for (const auto* mask : {"none", "2G", "3G", "2G+3G", "4G", "2G+4G", "3G+4G",
                             "2G+3G+4G"}) {
      cells.push_back(wtr::io::format_percent(panel.row_share(device_class, mask)));
    }
    table.add_row(std::move(cells));
  }
  std::cout << table.render();
}

}  // namespace

int main() {
  using namespace wtr;
  namespace paper = tracegen::paper;

  const auto run = bench::run_mno_scenario();
  const auto figure = core::rat_usage_figure(run.population);

  std::cout << io::figure_banner("Fig. 9", "Device share with respect to services/RAT");
  print_panel("Connectivity (any successful radio use):", figure.connectivity);
  print_panel("Data interfaces:", figure.data);
  print_panel("Voice interfaces:", figure.voice);

  io::Table checks{{"metric", "paper", "measured"}};
  bench::add_check(checks, "m2m active on 2G only (connectivity)",
                   paper::kM2M2gOnlyConnectivityShare,
                   core::class_mask_share(figure.connectivity, core::ClassLabel::kM2M, "2G"));
  bench::add_check(checks, "feat on 2G only (connectivity)",
                   paper::kFeat2gOnlyConnectivityShare,
                   core::class_mask_share(figure.connectivity, core::ClassLabel::kFeat, "2G"));
  bench::add_check(checks, "m2m with 2G-only data", paper::kM2M2gOnlyDataShare,
                   core::class_mask_share(figure.data, core::ClassLabel::kM2M, "2G"));
  bench::add_check(checks, "m2m with no data activity", paper::kM2MNoDataShare,
                   core::class_mask_share(figure.data, core::ClassLabel::kM2M, "none"));
  bench::add_check(checks, "m2m voice on 2G", paper::kM2M2gVoiceShare,
                   core::class_mask_share(figure.voice, core::ClassLabel::kM2M, "2G"));
  bench::add_check(checks, "m2m with no voice activity", paper::kM2MNoVoiceShare,
                   core::class_mask_share(figure.voice, core::ClassLabel::kM2M, "none"));
  bench::add_check(checks, "feat with no data activity", paper::kFeatNoDataShare,
                   core::class_mask_share(figure.data, core::ClassLabel::kFeat, "none"));
  bench::add_check(checks, "feat with no voice activity", paper::kFeatNoVoiceShare,
                   core::class_mask_share(figure.voice, core::ClassLabel::kFeat, "none"));
  std::cout << '\n' << checks.render();
  return 0;
}
