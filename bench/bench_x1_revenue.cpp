// X1 (extension) — quantifying §6's economic argument: wholesale/retail
// revenue vs signaling load per device class and roaming status. The paper
// argues M2M devices "occupy radio resources … but do not generate traffic
// that would allow MNOs to accrue revenue"; this harness puts numbers on
// the revenue-to-load gap.

#include "bench_common.hpp"

#include "core/revenue.hpp"

int main() {
  using namespace wtr;

  const auto run = bench::run_mno_scenario();
  const auto groups = core::revenue_by_group(run.population);

  std::cout << io::figure_banner(
      "X1", "Revenue vs signaling load per class x roaming status");

  io::Table table{{"group", "devices", "device-days", "revenue/device-day",
                   "signaling cost/device-day", "revenue / load"}};
  for (const auto& [key, breakdown] : groups) {
    table.add_row({key, io::format_count(breakdown.devices),
                   io::format_count(breakdown.device_days),
                   io::format_fixed(breakdown.revenue_per_device_day(), 3),
                   io::format_fixed(breakdown.cost_per_device_day(), 3),
                   io::format_fixed(breakdown.revenue_to_load(), 2)});
  }
  std::cout << table.render();

  const auto& m2m_in = groups.at("m2m/inbound");
  const auto& smart_in = groups.at("smart/inbound");
  const auto& smart_nat = groups.at("smart/native");

  io::Table claims{{"claim (paper §6.2 / §9)", "holds", "measured"}};
  claims.add_row(
      {"inbound m2m yields far less revenue/day than inbound smart",
       m2m_in.revenue_per_device_day() < 0.2 * smart_in.revenue_per_device_day()
           ? "yes"
           : "NO",
       io::format_fixed(m2m_in.revenue_per_device_day(), 3) + " vs " +
           io::format_fixed(smart_in.revenue_per_device_day(), 3)});
  claims.add_row({"m2m revenue/load is far below every phone group",
                  [&] {
                    for (const auto& [key, b] : groups) {
                      if (key.starts_with("m2m")) continue;
                      if (b.revenue_to_load() < 5.0 * m2m_in.revenue_to_load()) {
                        return "NO";
                      }
                    }
                    return "yes";
                  }(),
                  io::format_fixed(m2m_in.revenue_to_load(), 2)});
  claims.add_row({"native smartphones fund the network",
                  smart_nat.revenue_to_load() > 10.0 * m2m_in.revenue_to_load()
                      ? "yes"
                      : "NO",
                  io::format_fixed(smart_nat.revenue_to_load(), 2) + " vs " +
                      io::format_fixed(m2m_in.revenue_to_load(), 2)});
  std::cout << '\n' << claims.render()
            << "\n(Tariffs are configurable in core::TariffSchedule; only"
               " ratios between groups are meaningful.)\n";
  return 0;
}
