// S3 — closed-loop overload storm: the StormScenario (synchronized meter
// check-in herd + staged FOTA campaign with failed-image retries) run twice
// against the same CongestionModel capacity. The unmitigated arm models
// legacy firmware that treats kCongestion as a generic failure and retries
// on the T3411/T3402 machine — the retry load feeds back into the next
// bucket's reject probability and the fleet death-spirals. The mitigated
// arm honours 3GPP congestion controls: T3346 network-assigned mobility
// backoff spreads the retries out, and extended access barring sheds the
// delay-tolerant meters first. The bench asserts both arms congest, and
// that mitigation bounds the storm: shorter congested window, fewer
// congestion rejects, and real EAB shedding.

#include "bench_common.hpp"
#include "faults/congestion.hpp"
#include "faults/resilience_report.hpp"
#include "tracegen/storm_scenario.hpp"

namespace {

using namespace wtr;

struct ArmResult {
  std::uint64_t devices = 0;
  std::uint64_t procedures = 0;
  std::uint64_t congestion_rejects = 0;
  std::uint64_t attempts = 0;
  std::uint64_t eab_barred = 0;
  std::uint64_t congested_buckets = 0;
  double peak_overload = 0.0;
  double peak_reject = 0.0;
  stats::SimTime first_congested = -1;
  stats::SimTime last_congested = -1;

  [[nodiscard]] bool congested() const noexcept { return first_congested >= 0; }
  /// Total overloaded time — the recovery measure. Every check-in beat
  /// overloads briefly even under mitigation (EAB engages one bucket after
  /// the spike, by construction), so first-to-last congested span covers
  /// the whole run in both arms; what mitigation bounds is how long each
  /// episode *lasts*, which this sums.
  [[nodiscard]] double congested_s(stats::SimTime bucket_s) const noexcept {
    return static_cast<double>(congested_buckets) * static_cast<double>(bucket_s);
  }
};

ArmResult run_arm(const tracegen::StormScenarioConfig& base,
                  const faults::CongestionConfig& congestion_config,
                  std::size_t op_count, bool mitigated,
                  obs::RunObservation* observation) {
  faults::CongestionModel model{congestion_config, op_count, /*faults=*/nullptr,
                               observation != nullptr ? &observation->metrics()
                                                      : nullptr};
  tracegen::StormScenarioConfig config = base;
  config.congestion = &model;
  config.honor_congestion_control = mitigated;
  config.eab_meters = mitigated;
  if (observation != nullptr) config.obs = observation->view();

  static const faults::FaultSchedule kNoFaults{};  // report plumbing only
  tracegen::StormScenario scenario{config};
  std::cerr << "[bench] " << (mitigated ? "mitigated" : "unmitigated")
            << " arm: " << scenario.device_count() << " devices, " << config.days
            << " days...\n";
  faults::ResilienceReport report{scenario.world(), kNoFaults,
                                  observation != nullptr ? &observation->metrics()
                                                         : nullptr};
  scenario.run({&report});

  ArmResult arm;
  arm.devices = scenario.device_count();
  arm.procedures = report.summary().procedures;
  arm.congestion_rejects = report.summary().congestion_rejects();
  arm.attempts = model.total_attempts();
  arm.eab_barred = model.total_barred();
  arm.congested_buckets = model.congested_buckets();
  arm.peak_overload = model.peak_overload();
  arm.peak_reject = model.peak_reject();
  arm.first_congested = model.first_congested_at();
  arm.last_congested = model.last_congested_at();
  return arm;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = bench::threads_from_args(argc, argv);
  std::cout << io::figure_banner("S3", "Closed-loop overload storm (A/B)");

  constexpr std::uint64_t kSeed = 7331;
  const std::size_t meters = bench::scale_override(1'600);
  const std::size_t trackers = std::max<std::size_t>(meters / 4, 8);

  tracegen::StormScenarioConfig base;
  base.seed = kSeed;
  base.meters = meters;
  base.trackers = trackers;
  base.days = 2;
  base.threads = threads;
  // The herd spreads over ~3 load buckets so the spike itself crosses a
  // bucket boundary — the closed loop needs last-bucket load to meet
  // this-bucket attempts.
  base.checkin_jitter_s = 150.0;
  base.fota_start_s = 30 * 3600;
  base.fota_failure_p = 0.35;
  // Mechanistic 3GPP retries in both arms: T3411 short-timer hammering is
  // exactly what the unmitigated arm's death spiral is made of.
  base.backoff.enabled = true;

  // Operator ids and count are world properties — a throwaway small
  // scenario with the same seed reads them deterministically.
  std::size_t op_count = 0;
  topology::OperatorId observer_radio = topology::kInvalidOperator;
  {
    tracegen::StormScenarioConfig probe = base;
    probe.meters = 8;
    probe.trackers = 2;
    probe.days = 1;
    tracegen::StormScenario scenario{probe};
    op_count = scenario.operator_count();
    observer_radio = scenario.observer_radio();
  }

  faults::CongestionConfig congestion;
  congestion.bucket_s = 60;
  // The herd alone pushes ~4x this per bucket at the beat: deep overload,
  // but the reject ceiling keeps a trickle of successes alive.
  congestion.capacities = {{observer_radio, std::max(50.0, 0.2 * meters)}};
  congestion.overload_exponent = 1.0;
  congestion.eab_threshold = 1.5;

  obs::RunObservation observation;
  const auto mitigated = run_arm(base, congestion, op_count, /*mitigated=*/true,
                                 &observation);
  const auto unmitigated = run_arm(base, congestion, op_count, /*mitigated=*/false,
                                   /*observation=*/nullptr);

  io::Table table{{"metric", "mitigated (T3346+EAB)", "unmitigated"}};
  table.add_row({"attach-family attempts", io::format_count(mitigated.attempts),
                 io::format_count(unmitigated.attempts)});
  table.add_row({"congestion rejects", io::format_count(mitigated.congestion_rejects),
                 io::format_count(unmitigated.congestion_rejects)});
  table.add_row({"EAB-shed attach cycles", io::format_count(mitigated.eab_barred),
                 io::format_count(unmitigated.eab_barred)});
  table.add_row({"congested buckets", io::format_count(mitigated.congested_buckets),
                 io::format_count(unmitigated.congested_buckets)});
  table.add_row({"peak overload factor", io::format_fixed(mitigated.peak_overload),
                 io::format_fixed(unmitigated.peak_overload)});
  table.add_row({"peak reject probability", io::format_percent(mitigated.peak_reject),
                 io::format_percent(unmitigated.peak_reject)});
  table.add_row(
      {"overloaded time",
       io::format_fixed(mitigated.congested_s(congestion.bucket_s), 0) + " s",
       io::format_fixed(unmitigated.congested_s(congestion.bucket_s), 0) + " s"});
  std::cout << table.render();

  // --- Verdict: the overload must really bite in both arms, and the 3GPP
  // controls must bound it — shorter congested window, fewer rejects, and
  // the meters actually shedding via EAB.
  const bool both_congested = mitigated.congested() && unmitigated.congested();
  const bool window_bounded = mitigated.congested_s(congestion.bucket_s) <
                              unmitigated.congested_s(congestion.bucket_s);
  const bool fewer_rejects =
      mitigated.congestion_rejects < unmitigated.congestion_rejects;
  const bool eab_shed = mitigated.eab_barred > 0;
  const bool peak_ordered = mitigated.peak_reject <= unmitigated.peak_reject;
  const bool pass =
      both_congested && window_bounded && fewer_rejects && eab_shed && peak_ordered;

  std::cout << '\n'
            << "both arms congested:        " << (both_congested ? "yes" : "NO") << '\n'
            << "mitigated window shorter:   " << (window_bounded ? "yes" : "NO") << '\n'
            << "mitigated fewer rejects:    " << (fewer_rejects ? "yes" : "NO") << '\n'
            << "EAB shed load (mitigated):  " << (eab_shed ? "yes" : "NO") << '\n'
            << "peak reject ordered:        " << (peak_ordered ? "yes" : "NO") << '\n'
            << (pass ? "\nS3 PASS: congestion controls bound the storm.\n"
                     : "\nS3 FAIL: see table above.\n");

  auto manifest = bench::make_manifest("s3", kSeed, meters + trackers, observation);
  manifest.add_result("storm_meters", static_cast<std::uint64_t>(meters));
  manifest.add_result("storm_trackers", static_cast<std::uint64_t>(trackers));
  manifest.add_result("congestion_capacity", std::max(50.0, 0.2 * meters));
  manifest.add_result("congestion_rejects_mitigated", mitigated.congestion_rejects);
  manifest.add_result("congestion_rejects_unmitigated", unmitigated.congestion_rejects);
  manifest.add_result("congestion_attempts_mitigated", mitigated.attempts);
  manifest.add_result("congestion_attempts_unmitigated", unmitigated.attempts);
  manifest.add_result("congestion_eab_barred_mitigated", mitigated.eab_barred);
  manifest.add_result("congestion_peak_overload_mitigated", mitigated.peak_overload);
  manifest.add_result("congestion_peak_overload_unmitigated", unmitigated.peak_overload);
  manifest.add_result("congestion_peak_reject_mitigated", mitigated.peak_reject);
  manifest.add_result("congestion_peak_reject_unmitigated", unmitigated.peak_reject);
  manifest.add_result("congestion_buckets_mitigated", mitigated.congested_buckets);
  manifest.add_result("congestion_buckets_unmitigated", unmitigated.congested_buckets);
  manifest.add_result("storm_overloaded_s_mitigated",
                      mitigated.congested_s(congestion.bucket_s));
  manifest.add_result("storm_overloaded_s_unmitigated",
                      unmitigated.congested_s(congestion.bucket_s));
  manifest.add_result("storm_first_congested_s_mitigated",
                      static_cast<double>(mitigated.first_congested));
  manifest.add_result("storm_last_congested_s_mitigated",
                      static_cast<double>(mitigated.last_congested));
  manifest.add_result("storm_first_congested_s_unmitigated",
                      static_cast<double>(unmitigated.first_congested));
  manifest.add_result("storm_last_congested_s_unmitigated",
                      static_cast<double>(unmitigated.last_congested));
  manifest.add_result("storm_procedures_mitigated", mitigated.procedures);
  manifest.add_result("storm_procedures_unmitigated", unmitigated.procedures);
  manifest.add_result("verdict", std::string(pass ? "PASS" : "FAIL"));
  bench::write_manifest(manifest);
  return pass ? 0 : 1;
}
