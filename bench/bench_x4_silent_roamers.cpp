// X4 (extension) — "silent roamers" (§8's regulatory footnote): inbound
// devices that keep signaling to the network without ever generating
// chargeable usage. EU regulation pursues "awakening" them; for a visited
// MNO they are pure cost. This harness measures their prevalence per class.

#include "bench_common.hpp"

int main() {
  using namespace wtr;

  const auto run = bench::run_mno_scenario();
  const auto stats = core::silent_roamers(run.population);

  std::cout << io::figure_banner("X4", "Silent roamers among inbound devices");

  io::Table table{{"metric", "value"}};
  table.add_row({"inbound devices", io::format_count(stats.inbound_devices)});
  table.add_row({"silent (signaling, no data, no calls)", io::format_count(stats.silent)});
  table.add_row({"silent share", io::format_percent(stats.share())});
  std::cout << table.render();

  io::Table by_class{{"class", "silent devices", "share of silent"}};
  for (const auto& [device_class, count] : stats.silent_by_class) {
    by_class.add_row({device_class, io::format_count(count),
                      io::format_percent(stats.silent == 0
                                             ? 0.0
                                             : static_cast<double>(count) /
                                                   static_cast<double>(stats.silent))});
  }
  std::cout << '\n' << by_class.render()
            << "\nSilent roamers are dominated by M2M boxes (voice-less"
               " alarms, meters between reporting windows) — the population"
               " the paper says VMNOs cannot even bill for.\n";
  return 0;
}
