// Figure 8 — radius-of-gyration comparison across device classes and
// roaming status (time-weighted daily gyration, averaged per device).

#include "bench_common.hpp"

#include "core/activity_metrics.hpp"

int main() {
  using namespace wtr;
  namespace paper = tracegen::paper;

  const auto run = bench::run_mno_scenario();
  const auto groups = core::gyration_figure(run.population);

  std::cout << io::figure_banner("Fig. 8", "Radius of gyration comparison");

  io::Table table{{"group", "n", "p50 (m)", "p80 (m)", "p95 (m)", "> 1 km"}};
  for (const auto& [key, ecdf] : groups) {
    if (ecdf.empty()) continue;
    table.add_row({key, io::format_count(ecdf.size()),
                   io::format_fixed(ecdf.quantile(0.5), 0),
                   io::format_fixed(ecdf.quantile(0.8), 0),
                   io::format_fixed(ecdf.quantile(0.95), 0),
                   io::format_percent(ecdf.fraction_above(1'000.0))});
  }
  std::cout << table.render();

  io::Table checks{{"metric", "paper", "measured"}};
  bench::add_check(checks, "inbound m2m devices with gyration > 1 km",
                   paper::kM2MGyrationAbove1kmShare,
                   core::gyration_share_above(run.population, core::ClassLabel::kM2M,
                                              /*inbound=*/true, 1'000.0));
  std::cout << '\n' << checks.render()
            << "\n(The paper notes part of the sub-kilometer spread is cell"
               " reselection rather than movement; the simulator reproduces"
               " that through serving-sector jitter of fixed devices.)\n";
  return 0;
}
