// Figure 11 — SMIP native vs SMIP roaming smart meters: active days (a)
// and average signaling messages per device per day (b), plus the failure
// incidence quoted in §7.1.

#include "bench_common.hpp"

#include "core/smip_analysis.hpp"

int main() {
  using namespace wtr;
  namespace paper = tracegen::paper;

  tracegen::SmipScenarioConfig config;
  config.total_devices = bench::scale_override(12'000);
  tracegen::SmipScenario scenario{config};
  std::cerr << "[bench] simulating SMIP scenario: " << scenario.device_count()
            << " meters, " << config.days << " days...\n";

  core::CatalogAccumulator accumulator{{scenario.observer_plmn(),
                                        {scenario.observer_plmn()}}};
  scenario.run({&accumulator});
  const auto catalog = accumulator.finalize();
  const auto summaries = core::summarize(catalog);
  const auto analysis =
      core::analyze_smip(summaries, scenario.native_meters(), scenario.roaming_meters(),
                         config.days, scenario.tac_catalog());

  std::cout << io::figure_banner("Fig. 11-a", "SMIP device active days");
  io::Table activity{{"days <=", "native (all)", "native (day-0 cohort)", "roaming"}};
  for (double d : {1.0, 5.0, 10.0, 15.0, 20.0, 25.0, 26.0}) {
    activity.add_row({io::format_fixed(d, 0),
                      io::format_percent(analysis.native.active_days.fraction_at_most(d)),
                      io::format_percent(
                          analysis.native.active_days_day0.fraction_at_most(d)),
                      io::format_percent(analysis.roaming.active_days.fraction_at_most(d))});
  }
  std::cout << activity.render();

  io::Table checks{{"metric", "paper", "measured"}};
  bench::add_check(checks, "native meters active whole period",
                   paper::kSmipNativeFullPeriodShare, analysis.native.fraction_full_period);
  bench::add_check(checks, "roaming meters active <= 5 days",
                   paper::kSmipRoamingAtMost5DaysShare,
                   analysis.roaming.active_days.fraction_at_most(5.0));
  std::cout << '\n' << checks.render();

  std::cout << io::figure_banner("Fig. 11-b", "Signaling messages per SMIP device/day");
  io::Table signaling{{"group", "devices", "mean msgs/day", "p50", "p90"}};
  signaling.add_row({"SMIP native", io::format_count(analysis.native.devices),
                     io::format_fixed(analysis.native.mean_signaling_per_day, 1),
                     io::format_fixed(analysis.native.signaling_per_day.quantile(0.5), 1),
                     io::format_fixed(analysis.native.signaling_per_day.quantile(0.9), 1)});
  signaling.add_row(
      {"SMIP roaming", io::format_count(analysis.roaming.devices),
       io::format_fixed(analysis.roaming.mean_signaling_per_day, 1),
       io::format_fixed(analysis.roaming.signaling_per_day.quantile(0.5), 1),
       io::format_fixed(analysis.roaming.signaling_per_day.quantile(0.9), 1)});
  std::cout << signaling.render();

  io::Table ratio{{"metric", "paper", "measured"}};
  bench::add_check(ratio, "roaming/native signaling ratio",
                   paper::kSmipRoamingToNativeSignalingRatio, analysis.signaling_ratio(),
                   /*percent=*/false);
  const double all_failed =
      (analysis.native.fraction_with_failures * analysis.native.devices +
       analysis.roaming.fraction_with_failures * analysis.roaming.devices) /
      std::max<std::size_t>(1, analysis.native.devices + analysis.roaming.devices);
  bench::add_check(ratio, "devices with >=1 failed event (all)",
                   paper::kSmipFailedDeviceShareAll, all_failed);
  bench::add_check(ratio, "devices with >=1 failed event (roaming)",
                   paper::kSmipFailedDeviceShareRoaming,
                   analysis.roaming.fraction_with_failures);
  std::cout << '\n' << ratio.render();

  std::cout << "\nRAT usage (paper: roaming all 2G-only; native 2G+3G with 2/3"
               " only on 3G):\n";
  io::Table rats{{"group", "2G", "3G", "2G+3G", "none"}};
  for (const auto& [name, group] :
       {std::pair{"native", &analysis.native}, std::pair{"roaming", &analysis.roaming}}) {
    rats.add_row({name, io::format_percent(group->rat_usage.share("2G")),
                  io::format_percent(group->rat_usage.share("3G")),
                  io::format_percent(group->rat_usage.share("2G+3G")),
                  io::format_percent(group->rat_usage.share("none"))});
  }
  std::cout << rats.render();
  return 0;
}
