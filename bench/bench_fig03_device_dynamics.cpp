// Figure 3 — M2M platform device-level dynamics: (left) ECDF of signaling
// records per device; (center) VMNOs used per roaming device; (right)
// inter-VMNO switches for multi-VMNO devices.

#include "bench_common.hpp"

namespace {

void print_ecdf_series(const wtr::stats::Ecdf& ecdf, const std::string& title,
                       std::span<const double> points) {
  wtr::io::Table table{{"x", "F(x)"}};
  for (double p : points) {
    table.add_row({wtr::io::format_fixed(p, 0),
                   wtr::io::format_percent(ecdf.fraction_at_most(p))});
  }
  std::cout << '\n' << title << " (" << ecdf.describe() << ")\n" << table.render();
}

}  // namespace

int main() {
  using namespace wtr;
  namespace paper = tracegen::paper;

  const auto run = bench::run_platform_scenario();
  const auto& stats = run.stats;

  std::cout << io::figure_banner("Fig. 3", "Platform device-level dynamics");

  // --- Left panel: records per device.
  const std::array<double, 8> record_points{1,    10,    50,     200,
                                            1000, 2000, 10'000, 100'000};
  print_ecdf_series(stats.records_all, "Signaling records per device — all devices",
                    record_points);
  print_ecdf_series(stats.records_4g_ok, "  devices with >=1 successful 4G procedure",
                    record_points);
  print_ecdf_series(stats.records_roaming, "  roaming devices", record_points);
  print_ecdf_series(stats.records_native, "  native devices", record_points);

  io::Table checks{{"metric", "paper", "measured"}};
  bench::add_check(checks, "mean records/device", paper::kMeanRecordsPerDevice,
                   stats.records_all.mean(), /*percent=*/false);
  bench::add_check(checks, "share of devices < 2000 records",
                   paper::kShareDevicesBelow2000Records,
                   stats.records_all.fraction_at_most(2'000.0));
  bench::add_check(checks, "max records/device", paper::kMaxRecordsPerDevice,
                   stats.records_all.max(), /*percent=*/false);
  bench::add_check(checks, "roaming/native median ratio",
                   paper::kRoamingToNativeMedianRecordsRatio,
                   stats.records_native.empty() || stats.records_native.median() <= 0
                       ? 0.0
                       : stats.records_roaming.median() / stats.records_native.median(),
                   /*percent=*/false);
  std::cout << '\n' << checks.render();

  // --- Center panel: VMNOs per roaming device.
  std::cout << io::figure_banner("Fig. 3-center", "VMNOs used per roaming device");
  io::Table vmnos{{"metric", "paper", "measured"}};
  bench::add_check(vmnos, "exactly 1 VMNO", paper::kSingleVmnoRoamerShare,
                   stats.vmnos_per_roaming_device.fraction_at_most(1.0));
  bench::add_check(vmnos, "exactly 2 VMNOs", paper::kTwoVmnoRoamerShare,
                   stats.vmnos_per_roaming_device.fraction_at_most(2.0) -
                       stats.vmnos_per_roaming_device.fraction_at_most(1.0));
  bench::add_check(vmnos, ">= 4 VMNOs", paper::kThreePlusVmnoRoamerShare,
                   stats.vmnos_per_roaming_device.fraction_above(3.0));
  bench::add_check(vmnos, "max VMNOs tried by failed-only device",
                   static_cast<double>(paper::kMaxVmnosFailedDevice),
                   static_cast<double>(stats.max_vmnos_failed_only), /*percent=*/false);
  std::cout << vmnos.render();

  // --- Right panel: switch counts for multi-VMNO devices.
  std::cout << io::figure_banner("Fig. 3-right", "Inter-VMNO switches (multi-VMNO devices)");
  io::Table switches{{"metric", "paper", "measured"}};
  bench::add_check(switches, "devices with >= 2 VMNOs", paper::kMultiVmnoDeviceShare,
                   stats.share_multi_vmno_devices);
  bench::add_check(switches, "<= 2 switches over the window",
                   paper::kMultiVmnoAtMostTwoSwitchesShare,
                   stats.switches_multi_vmno.fraction_at_most(2.0));
  bench::add_check(switches, ">= 1 switch/day (11+)", paper::kMultiVmnoDailySwitchShare,
                   stats.switches_multi_vmno.fraction_above(10.9));
  bench::add_check(switches, "switch storms (100-3000)", paper::kMultiVmnoStormShare,
                   stats.switches_multi_vmno.fraction_at_most(3'000.0) -
                       stats.switches_multi_vmno.fraction_at_most(99.9));
  std::cout << switches.render();

  const std::array<double, 7> switch_points{0, 1, 2, 5, 11, 100, 1000};
  print_ecdf_series(stats.switches_multi_vmno, "Switch-count ECDF", switch_points);
  return 0;
}
