// Figure 5 — home countries of inbound roaming devices: (top) overall
// distribution; (bottom) per device class, normalized per class.

#include "bench_common.hpp"

int main() {
  using namespace wtr;
  namespace paper = tracegen::paper;

  const auto run = bench::run_mno_scenario();
  const auto& population = run.population;

  std::cout << io::figure_banner("Fig. 5-top", "Home country of inbound roaming devices");

  const auto overall = core::inbound_home_countries(population);
  io::Table top{{"rank", "home country", "devices", "share"}};
  int rank = 0;
  for (const auto& [iso, count] : overall.sorted()) {
    if (++rank > 20) break;
    top.add_row({std::to_string(rank), iso, io::format_count(count),
                 io::format_percent(overall.share(iso))});
  }
  std::cout << top.render();

  io::Table checks{{"metric", "paper", "measured"}};
  bench::add_check(checks, "top-20 home countries' share", paper::kTop20HomeCountryShare,
                   overall.top_k_share(20));
  bench::add_check(checks, "NL+SE+ES share", paper::kTop3HomeCountryShare,
                   overall.share("NL") + overall.share("SE") + overall.share("ES"));
  std::cout << '\n' << checks.render();

  std::cout << io::figure_banner("Fig. 5-bottom", "Home country x device class");
  const auto by_class = core::inbound_home_country_by_class(population);
  io::Table rows{{"class", "NL", "SE", "ES", "DE", "FR", "IE", "US", "Other"}};
  for (const auto* class_name : {"m2m", "smart", "feat"}) {
    double listed = 0.0;
    std::vector<std::string> cells{class_name};
    for (const auto* iso : {"NL", "SE", "ES", "DE", "FR", "IE", "US"}) {
      const double share = by_class.row_share(class_name, iso);
      listed += share;
      cells.push_back(io::format_percent(share));
    }
    cells.push_back(io::format_percent(1.0 - listed));
    rows.add_row(std::move(cells));
  }
  std::cout << rows.render();

  io::Table class_checks{{"metric", "paper", "measured"}};
  auto top3 = [&](const char* class_name) {
    return by_class.row_share(class_name, "NL") + by_class.row_share(class_name, "SE") +
           by_class.row_share(class_name, "ES");
  };
  bench::add_check(class_checks, "m2m from NL/SE/ES", paper::kM2MTop3HomeShare,
                   top3("m2m"));
  bench::add_check(class_checks, "smart from NL/SE/ES", paper::kSmartTop3HomeShare,
                   top3("smart"));
  bench::add_check(class_checks, "feat from NL/SE/ES", paper::kFeatTop3HomeShare,
                   top3("feat"));
  std::cout << '\n' << class_checks.render();
  return 0;
}
