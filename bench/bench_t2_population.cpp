// T2 (§4.2–4.3 in-text tables) — roaming-label shares per day, device-class
// shares, the APN inventory, and the vendor composition of inbound roamers.

#include "bench_common.hpp"

#include "cellnet/tac_catalog.hpp"

int main(int argc, char** argv) {
  using namespace wtr;
  namespace paper = tracegen::paper;
  const unsigned threads = bench::threads_from_args(argc, argv);

  obs::RunObservation observation;
  const auto run = bench::run_mno_scenario(16'000, 2019, &observation, threads);
  const auto& population = run.population;

  std::cout << io::figure_banner("T2", "MNO population composition (§4.2–4.3)");

  // --- Per-day roaming label shares.
  const auto label_shares = core::daily_label_shares(run.catalog, population.labeler);
  io::Table labels{{"label", "paper (per-day)", "measured (per-day)"}};
  labels.add_row({"H:H", io::format_percent(paper::kLabelShareHH),
                  io::format_percent(label_shares.share("H:H"))});
  labels.add_row({"V:H", io::format_percent(paper::kLabelShareVH),
                  io::format_percent(label_shares.share("V:H"))});
  labels.add_row({"I:H", io::format_percent(paper::kLabelShareIH),
                  io::format_percent(label_shares.share("I:H"))});
  labels.add_row({"other", "~1%",
                  io::format_percent(1.0 - label_shares.share("H:H") -
                                     label_shares.share("V:H") -
                                     label_shares.share("I:H"))});
  std::cout << labels.render();

  // --- Device class shares.
  io::Table classes{{"class", "paper", "measured"}};
  const auto& classification = population.classification;
  classes.add_row({"smart", io::format_percent(paper::kSmartShare),
                   io::format_percent(classification.share_of(core::ClassLabel::kSmart))});
  classes.add_row({"feat", io::format_percent(paper::kFeatShare),
                   io::format_percent(classification.share_of(core::ClassLabel::kFeat))});
  classes.add_row({"m2m", io::format_percent(paper::kM2MShare),
                   io::format_percent(classification.share_of(core::ClassLabel::kM2M))});
  classes.add_row(
      {"m2m-maybe", io::format_percent(paper::kM2MMaybeShare),
       io::format_percent(classification.share_of(core::ClassLabel::kM2MMaybe))});
  std::cout << '\n' << classes.render();

  // --- APN inventory (absolute counts scale with population size; the
  // paper's are shown for reference).
  io::Table apns{{"APN pipeline stage", "paper", "measured"}};
  apns.add_row({"distinct APN strings", io::format_count(paper::kDistinctApns),
                io::format_count(classification.distinct_apns)});
  apns.add_row({"M2M keywords", io::format_count(paper::kM2MKeywords),
                io::format_count(core::default_m2m_keywords().size())});
  apns.add_row({"validated M2M APNs", io::format_count(paper::kValidatedM2MApns),
                io::format_count(classification.validated_m2m_apns)});
  apns.add_row({"consumer APNs", io::format_count(paper::kConsumerApns),
                io::format_count(classification.consumer_apns)});
  apns.add_row({"devices without any APN",
                io::format_percent(paper::kDevicesWithoutApnShare),
                io::format_percent(static_cast<double>(classification.devices_without_apn) /
                                   static_cast<double>(population.size()))});
  apns.add_row({"m2m via APN match", "-",
                io::format_count(classification.m2m_by_apn)});
  apns.add_row({"m2m via property propagation", "-",
                io::format_count(classification.m2m_by_propagation)});
  std::cout << '\n' << apns.render();

  // --- Vendor composition of inbound roamers.
  stats::CategoryCounter vendors;
  const auto& catalog = run.scenario->tac_catalog();
  for (std::size_t i = 0; i < population.size(); ++i) {
    if (!population.is_inbound(i)) continue;
    if (const auto* info = catalog.lookup(population.summaries[i].tac)) {
      vendors.add(info->vendor);
    }
  }
  const double top3 = vendors.share("Gemalto") + vendors.share("Telit") +
                      vendors.share("Sierra Wireless");
  io::Table vendor_table{{"metric", "paper", "measured"}};
  bench::add_check(vendor_table, "Gemalto+Telit+Sierra share of inbound",
                   paper::kTopVendorsInboundShare, top3);
  vendor_table.add_row({"distinct vendors (population)",
                        io::format_count(paper::kDistinctVendors),
                        io::format_count(catalog.distinct_vendors())});
  vendor_table.add_row({"distinct models (population)",
                        io::format_count(paper::kDistinctModels),
                        io::format_count(catalog.distinct_models())});
  std::cout << '\n' << vendor_table.render();

  io::Table top_vendors{{"rank", "vendor", "share of inbound roamers"}};
  int rank = 0;
  for (const auto& [vendor, count] : vendors.sorted()) {
    if (++rank > 8) break;
    (void)count;
    top_vendors.add_row({std::to_string(rank), vendor,
                         io::format_percent(vendors.share(vendor))});
  }
  std::cout << '\n' << top_vendors.render();

  auto manifest = bench::make_manifest("t2", run.scenario->config().seed,
                                       run.scenario->device_count(), observation);
  manifest.add_result("label_share_hh", label_shares.share("H:H"));
  manifest.add_result("label_share_vh", label_shares.share("V:H"));
  manifest.add_result("label_share_ih", label_shares.share("I:H"));
  manifest.add_result("smart_share",
                      classification.share_of(core::ClassLabel::kSmart));
  manifest.add_result("m2m_share", classification.share_of(core::ClassLabel::kM2M));
  manifest.add_result("distinct_apns", classification.distinct_apns);
  manifest.add_result("top3_vendor_inbound_share", top3);
  bench::add_thread_metadata(manifest, run.scenario->engine(), threads);
  bench::write_manifest(manifest);
  return 0;
}
