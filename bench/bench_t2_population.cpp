// T2 (§4.2–4.3 in-text tables) — roaming-label shares per day, device-class
// shares, the APN inventory, and the vendor composition of inbound roamers.
//
// Also home of the population scale sweep (README "Scaling"): each
// population in WTR_BENCH_POPULATIONS (default "10000,100000"; a 1M entry
// is the ROADMAP target and runs in a few minutes) is simulated three
// times — threads=1, threads=K, and interrupted+resumed through a
// mid-horizon checkpoint — streaming into a hashing sink instead of a
// catalog. All three record streams must hash identically; the sweep
// emits population_<N>_* manifest keys plus headline records_per_s and
// bytes_per_agent from the largest population.

#include "bench_common.hpp"

#include <bit>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "cellnet/tac_catalog.hpp"
#include "ckpt/snapshot.hpp"

namespace {

using namespace wtr;

/// Streaming FNV-1a-64 over every field of every record, in stream order —
/// a catalog-free stand-in for "the output bytes" at scales where keeping
/// records in memory is the bottleneck. Checkpointable so the running
/// state rides in snapshots and an interrupted+resumed run must reproduce
/// the uninterrupted hash exactly.
class HashingSink final : public sim::RecordSink, public ckpt::Checkpointable {
 public:
  void on_signaling(const signaling::SignalingTransaction& txn,
                    bool data_context) override {
    mix(txn.device);
    mix(static_cast<std::uint64_t>(txn.time));
    mix(txn.sim_plmn.key());
    mix(txn.visited_plmn.key());
    mix(static_cast<std::uint64_t>(txn.procedure));
    mix(static_cast<std::uint64_t>(txn.result));
    mix(static_cast<std::uint64_t>(txn.rat));
    mix(txn.sector);
    mix(txn.tac);
    mix(data_context ? 1u : 0u);
    ++records_;
  }
  void on_cdr(const records::Cdr& cdr) override {
    mix(cdr.device);
    mix(static_cast<std::uint64_t>(cdr.time));
    mix(cdr.sim_plmn.key());
    mix(cdr.visited_plmn.key());
    mix(std::bit_cast<std::uint64_t>(cdr.duration_s));
    mix(static_cast<std::uint64_t>(cdr.rat));
    ++records_;
  }
  void on_xdr(const records::Xdr& xdr) override {
    mix(xdr.device);
    mix(static_cast<std::uint64_t>(xdr.time));
    mix(xdr.sim_plmn.key());
    mix(xdr.visited_plmn.key());
    mix(xdr.bytes_up);
    mix(xdr.bytes_down);
    for (const char c : xdr.apn) mix_byte(static_cast<std::uint8_t>(c));
    mix(static_cast<std::uint64_t>(xdr.rat));
    ++records_;
  }
  void on_dwell(signaling::DeviceHash device, std::int32_t day,
                cellnet::Plmn visited_plmn, const cellnet::GeoPoint& location,
                double seconds) override {
    mix(device);
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(day)));
    mix(visited_plmn.key());
    mix(std::bit_cast<std::uint64_t>(location.lat));
    mix(std::bit_cast<std::uint64_t>(location.lon));
    mix(std::bit_cast<std::uint64_t>(seconds));
    ++records_;
  }

  void save_state(util::BinWriter& out) const override {
    out.u64(hash_);
    out.u64(records_);
  }
  void restore_state(util::BinReader& in) override {
    hash_ = in.u64();
    records_ = in.u64();
  }

  [[nodiscard]] std::uint64_t hash() const noexcept { return hash_; }
  [[nodiscard]] std::uint64_t records() const noexcept { return records_; }

 private:
  void mix_byte(std::uint8_t b) noexcept {
    hash_ ^= b;
    hash_ *= 1099511628211ull;
  }
  void mix(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<std::uint8_t>(v >> (i * 8)));
  }

  std::uint64_t hash_ = 14695981039346656037ull;
  std::uint64_t records_ = 0;
};

/// Populations from WTR_BENCH_POPULATIONS ("10000,100000,1000000"); same
/// hardening as scale_override — a typo must not silently shrink the sweep.
std::vector<std::size_t> sweep_populations() {
  const std::vector<std::size_t> fallback{10'000, 100'000};
  const char* env = std::getenv("WTR_BENCH_POPULATIONS");
  if (env == nullptr || *env == '\0') return fallback;
  std::vector<std::size_t> populations;
  const char* p = env;
  while (*p != '\0') {
    char* end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(p, &end, 10);
    if (errno != 0 || end == p || value == 0 || (*end != ',' && *end != '\0')) {
      std::cerr << "[bench] invalid WTR_BENCH_POPULATIONS=\"" << env
                << "\" (want comma-separated positive integers); using default\n";
      return fallback;
    }
    populations.push_back(static_cast<std::size_t>(value));
    p = *end == ',' ? end + 1 : end;
  }
  return populations.empty() ? fallback : populations;
}

struct SweepLeg {
  std::uint64_t hash = 0;
  std::uint64_t records = 0;
  std::uint64_t agents = 0;
  std::uint64_t hydrated = 0;
  std::size_t dormant_bytes = 0;   // arena residency before the run
  std::size_t resident_bytes = 0;  // arena residency after the run
  double build_s = 0.0;
  double run_s = 0.0;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// One sweep leg: build the MNO scenario at `devices`, stream the run into
/// a HashingSink, report hash + throughput + arena residency. `ckpt`
/// carries the interrupt/resume plumbing for the checkpoint legs (the sink
/// is registered as a checkpointable either way — registration alone never
/// changes output).
SweepLeg run_leg(std::size_t devices, unsigned threads,
                 const tracegen::CheckpointOptions& ckpt = {},
                 const std::string& resume_from = {}) {
  tracegen::MnoScenarioConfig config;
  config.seed = 2019;
  config.total_devices = devices;
  config.threads = threads;
  config.build_coverage = false;  // the sweep measures the engine, not analyses
  config.ckpt = ckpt;
  // Sharded windows buffer their records until the merge barrier; without a
  // boundary the single window spans the whole horizon, which at 1M agents
  // is tens of GB of buffered records. A daily cadence bounds residency;
  // with no snapshot path set it writes nothing, and window boundaries
  // never change output bytes.
  if (threads > 1 && config.ckpt.every_sim_hours == 0) {
    config.ckpt.every_sim_hours = 24;
  }

  SweepLeg leg;
  const auto build_start = std::chrono::steady_clock::now();
  tracegen::MnoScenario scenario{config};
  leg.build_s = seconds_since(build_start);

  HashingSink sink;
  scenario.engine().register_checkpointable("hash_sink", &sink);
  if (!resume_from.empty()) scenario.resume_from(resume_from);
  leg.dormant_bytes = scenario.engine().arena_resident_bytes();

  const auto run_start = std::chrono::steady_clock::now();
  scenario.run({&sink});
  leg.run_s = seconds_since(run_start);

  leg.hash = sink.hash();
  leg.records = sink.records();
  leg.agents = scenario.engine().agent_count();
  leg.hydrated = scenario.engine().agents_hydrated();
  leg.resident_bytes = scenario.engine().arena_resident_bytes();
  return leg;
}

std::string hash_hex(std::uint64_t hash) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(hash));
  return buf;
}

/// Run the scale sweep, printing one table and adding population_<N>_*
/// keys (plus headline records_per_s / bytes_per_agent from the largest
/// population). Returns false if any determinism guard tripped.
bool run_population_sweep(obs::RunManifest& manifest) {
  const auto populations = sweep_populations();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned par_threads = std::min(4u, std::max(2u, hw));

  io::Table table{{"population", "records", "records/s (t1)",
                   std::string("records/s (t") + std::to_string(par_threads) + ")",
                   "bytes/agent", "dormant bytes/agent", "guards"}};
  bool ok = true;
  std::size_t largest = 0;

  for (const std::size_t population : populations) {
    std::cerr << "[bench] scale sweep: " << population << " devices...\n";
    const SweepLeg base = run_leg(population, 1);
    const SweepLeg parallel = run_leg(population, par_threads);

    // Interrupt at mid-horizon (day 11 of 22), then resume a fresh process
    // image from the snapshot — the concatenated record stream must hash
    // identically to the uninterrupted run's.
    const std::string ckpt_path = "BENCH_t2_sweep_ckpt.bin";
    tracegen::CheckpointOptions stop_ckpt;
    stop_ckpt.path = ckpt_path;
    stop_ckpt.stop_after_sim_hours = 11 * 24;
    (void)run_leg(population, par_threads, stop_ckpt);
    const SweepLeg resumed = run_leg(population, par_threads, {}, ckpt_path);
    std::remove(ckpt_path.c_str());

    const bool threads_ok =
        parallel.hash == base.hash && parallel.records == base.records;
    const bool resume_ok = resumed.hash == base.hash && resumed.records == base.records;
    ok = ok && threads_ok && resume_ok;

    const double agents = static_cast<double>(base.agents);
    const double bytes_per_agent = static_cast<double>(base.resident_bytes) / agents;
    const double dormant_per_agent = static_cast<double>(base.dormant_bytes) / agents;
    const double rate_t1 = static_cast<double>(base.records) / base.run_s;
    const double rate_tn = static_cast<double>(parallel.records) / parallel.run_s;
    table.add_row({io::format_count(population), io::format_count(base.records),
                   io::format_count(static_cast<std::uint64_t>(rate_t1)),
                   io::format_count(static_cast<std::uint64_t>(rate_tn)),
                   io::format_fixed(bytes_per_agent), io::format_fixed(dormant_per_agent),
                   std::string(threads_ok ? "threads=ok" : "THREADS MISMATCH") + " " +
                       (resume_ok ? "resume=ok" : "RESUME MISMATCH")});

    const std::string prefix = "population_" + std::to_string(population) + "_";
    manifest.add_result(prefix + "records", base.records);
    manifest.add_result(prefix + "agents", base.agents);
    manifest.add_result(prefix + "hydrated", base.hydrated);
    manifest.add_result(prefix + "records_per_s", rate_t1);
    manifest.add_result(prefix + "records_per_s_t" + std::to_string(par_threads),
                        rate_tn);
    manifest.add_result(prefix + "bytes_per_agent", bytes_per_agent);
    manifest.add_result(prefix + "dormant_bytes_per_agent", dormant_per_agent);
    manifest.add_result(prefix + "run_wall_s", base.run_s);
    manifest.add_result(prefix + "build_wall_s", base.build_s);
    manifest.add_result(prefix + "hash", hash_hex(base.hash));
    if (population >= largest) {
      largest = population;
      manifest.add_result("records_per_s", std::max(rate_t1, rate_tn));
      manifest.add_result("bytes_per_agent", bytes_per_agent);
    }
  }

  std::cout << '\n'
            << io::figure_banner("T2b", "population scale sweep (ROADMAP: 1M+ agents)");
  std::cout << table.render();
  if (!ok) std::cerr << "[bench] scale sweep determinism guard FAILED\n";
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wtr;
  namespace paper = tracegen::paper;
  const unsigned threads = bench::threads_from_args(argc, argv);

  obs::RunObservation observation;
  const auto run = bench::run_mno_scenario(16'000, 2019, &observation, threads);
  const auto& population = run.population;

  std::cout << io::figure_banner("T2", "MNO population composition (§4.2–4.3)");

  // --- Per-day roaming label shares.
  const auto label_shares = core::daily_label_shares(run.catalog, population.labeler);
  io::Table labels{{"label", "paper (per-day)", "measured (per-day)"}};
  labels.add_row({"H:H", io::format_percent(paper::kLabelShareHH),
                  io::format_percent(label_shares.share("H:H"))});
  labels.add_row({"V:H", io::format_percent(paper::kLabelShareVH),
                  io::format_percent(label_shares.share("V:H"))});
  labels.add_row({"I:H", io::format_percent(paper::kLabelShareIH),
                  io::format_percent(label_shares.share("I:H"))});
  labels.add_row({"other", "~1%",
                  io::format_percent(1.0 - label_shares.share("H:H") -
                                     label_shares.share("V:H") -
                                     label_shares.share("I:H"))});
  std::cout << labels.render();

  // --- Device class shares.
  io::Table classes{{"class", "paper", "measured"}};
  const auto& classification = population.classification;
  classes.add_row({"smart", io::format_percent(paper::kSmartShare),
                   io::format_percent(classification.share_of(core::ClassLabel::kSmart))});
  classes.add_row({"feat", io::format_percent(paper::kFeatShare),
                   io::format_percent(classification.share_of(core::ClassLabel::kFeat))});
  classes.add_row({"m2m", io::format_percent(paper::kM2MShare),
                   io::format_percent(classification.share_of(core::ClassLabel::kM2M))});
  classes.add_row(
      {"m2m-maybe", io::format_percent(paper::kM2MMaybeShare),
       io::format_percent(classification.share_of(core::ClassLabel::kM2MMaybe))});
  std::cout << '\n' << classes.render();

  // --- APN inventory (absolute counts scale with population size; the
  // paper's are shown for reference).
  io::Table apns{{"APN pipeline stage", "paper", "measured"}};
  apns.add_row({"distinct APN strings", io::format_count(paper::kDistinctApns),
                io::format_count(classification.distinct_apns)});
  apns.add_row({"M2M keywords", io::format_count(paper::kM2MKeywords),
                io::format_count(core::default_m2m_keywords().size())});
  apns.add_row({"validated M2M APNs", io::format_count(paper::kValidatedM2MApns),
                io::format_count(classification.validated_m2m_apns)});
  apns.add_row({"consumer APNs", io::format_count(paper::kConsumerApns),
                io::format_count(classification.consumer_apns)});
  apns.add_row({"devices without any APN",
                io::format_percent(paper::kDevicesWithoutApnShare),
                io::format_percent(static_cast<double>(classification.devices_without_apn) /
                                   static_cast<double>(population.size()))});
  apns.add_row({"m2m via APN match", "-",
                io::format_count(classification.m2m_by_apn)});
  apns.add_row({"m2m via property propagation", "-",
                io::format_count(classification.m2m_by_propagation)});
  std::cout << '\n' << apns.render();

  // --- Vendor composition of inbound roamers.
  stats::CategoryCounter vendors;
  const auto& catalog = run.scenario->tac_catalog();
  for (std::size_t i = 0; i < population.size(); ++i) {
    if (!population.is_inbound(i)) continue;
    if (const auto* info = catalog.lookup(population.summaries[i].tac)) {
      vendors.add(info->vendor);
    }
  }
  const double top3 = vendors.share("Gemalto") + vendors.share("Telit") +
                      vendors.share("Sierra Wireless");
  io::Table vendor_table{{"metric", "paper", "measured"}};
  bench::add_check(vendor_table, "Gemalto+Telit+Sierra share of inbound",
                   paper::kTopVendorsInboundShare, top3);
  vendor_table.add_row({"distinct vendors (population)",
                        io::format_count(paper::kDistinctVendors),
                        io::format_count(catalog.distinct_vendors())});
  vendor_table.add_row({"distinct models (population)",
                        io::format_count(paper::kDistinctModels),
                        io::format_count(catalog.distinct_models())});
  std::cout << '\n' << vendor_table.render();

  io::Table top_vendors{{"rank", "vendor", "share of inbound roamers"}};
  int rank = 0;
  for (const auto& [vendor, count] : vendors.sorted()) {
    if (++rank > 8) break;
    (void)count;
    top_vendors.add_row({std::to_string(rank), vendor,
                         io::format_percent(vendors.share(vendor))});
  }
  std::cout << '\n' << top_vendors.render();

  auto manifest = bench::make_manifest("t2", run.scenario->config().seed,
                                       run.scenario->device_count(), observation);
  const bool sweep_ok = run_population_sweep(manifest);
  manifest.add_result("label_share_hh", label_shares.share("H:H"));
  manifest.add_result("label_share_vh", label_shares.share("V:H"));
  manifest.add_result("label_share_ih", label_shares.share("I:H"));
  manifest.add_result("smart_share",
                      classification.share_of(core::ClassLabel::kSmart));
  manifest.add_result("m2m_share", classification.share_of(core::ClassLabel::kM2M));
  manifest.add_result("distinct_apns", classification.distinct_apns);
  manifest.add_result("top3_vendor_inbound_share", top3);
  bench::add_thread_metadata(manifest, run.scenario->engine(), threads);
  bench::write_manifest(manifest);
  return sweep_ok ? 0 : 1;
}
