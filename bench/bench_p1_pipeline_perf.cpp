// P1 — pipeline performance. Two layers:
//
//  1. An instrumented end-to-end pipeline run (scenario build → engine →
//     summarize → census) under the obs layer, exported as BENCH_p1.json —
//     the schema-stable manifest the scripts/check.sh regression gate and
//     the cross-commit perf trajectory consume (phase wall-times,
//     records/sec, queue-depth max, failure counters).
//  2. The google-benchmark micro suite for the analysis kernels an operator
//     would run daily (summarize, labeler, classifier, census, gyration,
//     ECDF, simulation throughput).
//
// `--manifest-only` runs just layer 1 (the CI gate's fast path);
// `--threads=N` (or WTR_BENCH_THREADS) runs the engine sharded across N
// workers — output is byte-identical, and the manifest gains an A/B
// speedup measurement against a threads=1 reference run. Any other
// arguments pass through to google-benchmark.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "bench_common.hpp"
#include "ckpt/shutdown.hpp"
#include "core/activity_metrics.hpp"
#include "core/census.hpp"
#include "core/classifier_validation.hpp"
#include "core/trace_replay.hpp"
#include "io/bintrace.hpp"
#include "obs/trace.hpp"
#include "stats/distributions.hpp"
#include "tracegen/mno_scenario.hpp"

namespace {

using namespace wtr;

// --- Layer 1: instrumented pipeline manifest -------------------------------

constexpr std::uint64_t kPipelineSeed = 101;

struct PipelineRun {
  std::unique_ptr<tracegen::MnoScenario> scenario;
  std::size_t summaries = 0;
  std::size_t population = 0;
  double wall_s = 0.0;  // scenario build → census, end to end
  bool interrupted = false;  // Ctrl-C landed mid-engine (sinks are drained)
};

PipelineRun run_pipeline_once(unsigned threads, obs::RunObservation& observation) {
  const auto start = std::chrono::steady_clock::now();
  tracegen::MnoScenarioConfig config;
  config.seed = kPipelineSeed;
  config.total_devices = bench::scale_override(4'000);
  config.threads = threads;
  config.build_coverage = false;  // perf path needs no dwell grid
  config.obs = observation.view();

  std::cerr << "[bench] instrumented pipeline: " << config.total_devices
            << " devices, " << config.days << " days, " << threads
            << " thread(s)...\n";
  auto scenario = std::make_unique<tracegen::MnoScenario>(config);
  core::CatalogAccumulator accumulator{{scenario->observer_plmn(),
                                        scenario->family_plmns()}};
  scenario->run({&accumulator});

  if (scenario->engine().interrupted()) {
    // Graceful SIGINT/SIGTERM stop: the engine returned at a wake boundary,
    // so every record produced so far has already been delivered to the
    // accumulator — nothing buffered is lost. Skip the analysis phases;
    // the caller writes a *.partial manifest instead of the real one.
    PipelineRun run;
    run.scenario = std::move(scenario);
    run.interrupted = true;
    run.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return run;
  }

  auto timed = [&](const char* phase, auto&& fn) {
    obs::ScopedTimer timer{&observation.timers(), phase};
    return fn();
  };
  const auto catalog =
      timed("analysis/catalog_finalize", [&] { return accumulator.finalize(); });
  const auto summaries = timed("analysis/summarize", [&] { return core::summarize(catalog); });
  const auto population = timed("analysis/census", [&] {
    return core::run_census(catalog, scenario->observer_plmn(), scenario->mvno_plmns(),
                            scenario->tac_catalog());
  });

  PipelineRun run;
  run.scenario = std::move(scenario);
  run.summaries = summaries.size();
  run.population = population.size();
  run.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                   .count();
  return run;
}

/// Byte-exact record-stream capture for the checkpoint guard (doubles via
/// %a so equality is bit-equality, same as the determinism test suites).
class GuardStream final : public sim::RecordSink {
 public:
  std::string stream;

  void on_signaling(const signaling::SignalingTransaction& txn,
                    bool data_context) override {
    stream += 'S';
    for (const auto& field : signaling::to_csv_fields(txn)) {
      stream += field;
      stream += ',';
    }
    stream += data_context ? '1' : '0';
  }
  void on_cdr(const records::Cdr& cdr) override {
    stream += 'C';
    for (const auto& field : records::to_csv_fields(cdr)) {
      stream += field;
      stream += ',';
    }
  }
  void on_xdr(const records::Xdr& xdr) override {
    stream += 'X';
    for (const auto& field : records::to_csv_fields(xdr)) {
      stream += field;
      stream += ',';
    }
  }
  void on_dwell(signaling::DeviceHash device, std::int32_t day,
                cellnet::Plmn visited_plmn, const cellnet::GeoPoint& location,
                double seconds) override {
    char buf[96];
    std::snprintf(buf, sizeof buf, "D%llu,%d,%u,%a,%a,%a",
                  static_cast<unsigned long long>(device), day, visited_plmn.key(),
                  location.lat, location.lon, seconds);
    stream += buf;
  }
};

struct CheckpointGuard {
  bool ran = false;
  std::uint64_t checkpoints_written = 0;
  double checkpoint_wall_s = 0.0;
};

/// A/B guard for the checkpoint subsystem at reduced scale: a cadence-off
/// run must take the legacy code path untouched (zero snapshots written),
/// and a cadence-on run must produce a bit-identical record stream — the
/// snapshot boundaries may never perturb the simulation. Exits nonzero on
/// divergence (this is a correctness gate riding the perf bench).
CheckpointGuard run_checkpoint_guard(unsigned threads) {
  const std::size_t devices = std::max<std::size_t>(bench::scale_override(4'000) / 5, 200);
  const auto ckpt_path =
      (std::filesystem::temp_directory_path() / "wtr_bench_p1_guard_ckpt.bin").string();

  auto one = [&](const tracegen::CheckpointOptions& ckpt, GuardStream& sink) {
    tracegen::MnoScenarioConfig config;
    config.seed = kPipelineSeed;
    config.total_devices = devices;
    config.threads = threads;
    config.build_coverage = false;
    config.ckpt = ckpt;
    tracegen::MnoScenario scenario{config};
    scenario.run({&sink});
    CheckpointGuard stats;
    stats.ran = !scenario.engine().interrupted();
    stats.checkpoints_written = scenario.engine().checkpoints_written();
    stats.checkpoint_wall_s = scenario.engine().checkpoint_wall_s();
    return stats;
  };

  std::cerr << "[bench] checkpoint guard: " << devices
            << " devices, cadence off vs 12h...\n";
  GuardStream off_sink;
  const auto off = one({}, off_sink);

  tracegen::CheckpointOptions cadence;
  cadence.every_sim_hours = 12;
  cadence.path = ckpt_path;
  GuardStream on_sink;
  auto on = one(cadence, on_sink);
  std::filesystem::remove(ckpt_path);
  std::filesystem::remove(ckpt_path + ".tmp");

  if (!off.ran || !on.ran) return {};  // Ctrl-C mid-guard: nothing to assert

  if (off.checkpoints_written != 0) {
    std::cerr << "[bench] FAIL: cadence-off run wrote "
              << off.checkpoints_written << " snapshot(s); empty checkpoint "
              << "config must be a no-op\n";
    std::exit(1);
  }
  if (on.checkpoints_written == 0) {
    std::cerr << "[bench] FAIL: cadence-on run wrote no snapshots\n";
    std::exit(1);
  }
  if (off_sink.stream != on_sink.stream) {
    std::cerr << "[bench] FAIL: checkpointing changed the record stream ("
              << off_sink.stream.size() << " vs " << on_sink.stream.size()
              << " bytes) — snapshot boundaries must not perturb the run\n";
    std::exit(1);
  }
  std::cerr << "[bench] checkpoint guard: streams bit-identical, "
            << on.checkpoints_written << " snapshot(s), "
            << io::format_fixed(on.checkpoint_wall_s, 3) << "s snapshot wall\n";
  return on;
}

struct TraceFormatGuard {
  bool ran = false;
  std::uint64_t csv_bytes = 0;
  std::uint64_t binary_bytes = 0;
  std::uint64_t records = 0;
  double csv_wall_s = 0.0;
  double binary_wall_s = 0.0;
};

/// A/B guard for the trace interchange formats at reduced scale: export a
/// scenario's three record families as CSV, convert that CSV to WTRTRC1
/// binary, then replay both through the auto-detecting replay_*_trace entry
/// points into byte-exact capture sinks. The captures must be bit-identical
/// (exit nonzero otherwise — a correctness gate riding the perf bench), and
/// the measured walls feed the replay_speedup manifest key.
TraceFormatGuard run_trace_format_guard() {
  const std::size_t devices = std::max<std::size_t>(bench::scale_override(4'000) / 5, 200);
  std::cerr << "[bench] trace format guard: " << devices
            << " devices, CSV vs WTRTRC1 replay...\n";

  // Export the scenario's replayable families as canonical CSV.
  std::ostringstream sig_csv, cdr_csv, xdr_csv;
  {
    core::CsvTraceExportSink csv_sink{sig_csv, cdr_csv, xdr_csv};
    tracegen::MnoScenarioConfig config;
    config.seed = kPipelineSeed;
    config.total_devices = devices;
    config.build_coverage = false;
    tracegen::MnoScenario scenario{config};
    scenario.run({&csv_sink});
    if (scenario.engine().interrupted()) return {};  // Ctrl-C: nothing to assert
  }
  const std::string sig = sig_csv.str();
  const std::string cdr = cdr_csv.str();
  const std::string xdr = xdr_csv.str();

  // Convert CSV → binary by replaying each stream into a BinaryTraceSink.
  // Converting from the CSV text (rather than re-running the scenario into
  // a binary sink) keeps the A/B honest: CSV rounds call durations to one
  // decimal, so both files must carry the post-rounding values.
  std::uint64_t records = 0;
  auto to_binary = [&records](const std::string& csv,
                              core::ReplayStats (*replay)(std::istream&,
                                                          sim::RecordSink&)) {
    std::ostringstream out;
    {
      io::BinaryTraceSink sink{out};
      std::istringstream in{csv};
      const auto stats = replay(in, sink);
      records += stats.delivered;
    }
    return out.str();
  };
  const std::string sig_bin = to_binary(sig, core::replay_signaling_csv);
  const std::string cdr_bin = to_binary(cdr, core::replay_cdr_csv);
  const std::string xdr_bin = to_binary(xdr, core::replay_xdr_csv);

  // Correctness pass (untimed): replay both formats through the
  // format-sniffing entry points into byte-exact capture sinks.
  auto capture_replay = [](const std::string& s, const std::string& c,
                           const std::string& x) {
    GuardStream sink;
    std::istringstream si{s}, ci{c}, xi{x};
    core::replay_signaling_trace(si, sink);
    core::replay_cdr_trace(ci, sink);
    core::replay_xdr_trace(xi, sink);
    return std::move(sink.stream);
  };
  const std::string csv_capture = capture_replay(sig, cdr, xdr);
  const std::string bin_capture = capture_replay(sig_bin, cdr_bin, xdr_bin);

  // Timing pass: replay into a sink that only folds each record into a
  // checksum, so the walls measure the decoders — not a capture sink that
  // re-formats every record into strings and would dilute the ratio.
  struct FoldSink final : sim::RecordSink {
    std::uint64_t fold = 0;
    void on_signaling(const signaling::SignalingTransaction& txn,
                      bool data_context) override {
      fold += txn.device ^ static_cast<std::uint64_t>(txn.time) ^ txn.sector ^
              (data_context ? 1u : 0u);
    }
    void on_cdr(const records::Cdr& cdr) override {
      fold += cdr.device ^ static_cast<std::uint64_t>(cdr.time);
    }
    void on_xdr(const records::Xdr& xdr) override {
      fold += xdr.device ^ xdr.bytes_up ^ xdr.bytes_down ^ xdr.apn.size();
    }
    void on_dwell(signaling::DeviceHash device, std::int32_t, cellnet::Plmn,
                  const cellnet::GeoPoint&, double) override {
      fold += device;
    }
  };
  constexpr int kReps = 3;
  std::uint64_t fold_csv = 0;
  std::uint64_t fold_bin = 0;
  auto timed_replay = [&](const std::string& s, const std::string& c,
                          const std::string& x, std::uint64_t& fold) {
    double wall = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      FoldSink sink;
      std::istringstream si{s}, ci{c}, xi{x};
      const auto start = std::chrono::steady_clock::now();
      core::replay_signaling_trace(si, sink);
      core::replay_cdr_trace(ci, sink);
      core::replay_xdr_trace(xi, sink);
      wall += std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                  .count();
      fold ^= sink.fold;  // keep the sink's work observable
    }
    return wall;
  };
  TraceFormatGuard guard;
  guard.csv_wall_s = timed_replay(sig, cdr, xdr, fold_csv);
  guard.binary_wall_s = timed_replay(sig_bin, cdr_bin, xdr_bin, fold_bin);

  if (csv_capture != bin_capture || fold_csv != fold_bin) {
    std::cerr << "[bench] FAIL: binary trace replay diverged from CSV replay ("
              << csv_capture.size() << " vs " << bin_capture.size()
              << " bytes) — the two interchange formats must reproduce the "
              << "same record stream\n";
    std::exit(1);
  }

  guard.ran = true;
  guard.csv_bytes = sig.size() + cdr.size() + xdr.size();
  guard.binary_bytes = sig_bin.size() + cdr_bin.size() + xdr_bin.size();
  guard.records = records;
  const double speedup =
      guard.binary_wall_s > 0.0 ? guard.csv_wall_s / guard.binary_wall_s : 0.0;
  std::cerr << "[bench] trace format guard: streams bit-identical, " << records
            << " records, " << guard.csv_bytes << " B csv vs "
            << guard.binary_bytes << " B binary, replay "
            << io::format_fixed(speedup, 2) << "x faster\n";
  return guard;
}

struct TraceOverheadGuard {
  bool ran = false;
  double off_wall_s = 0.0;
  double on_wall_s = 0.0;
  double overhead_pct = 0.0;
  std::uint64_t trace_events = 0;
};

/// A/B guard for the flight recorder at reduced scale: a traced run must
/// produce a bit-identical record stream (tracing may never perturb the
/// simulation — exit nonzero otherwise), and its wall-time overhead must
/// stay under WTR_TRACE_OVERHEAD_MAX_PCT (default 3%). Min-of-3 walls per
/// arm; deltas inside an absolute noise floor pass regardless of ratio,
/// since tiny guard-scale runs can't resolve sub-millisecond differences.
TraceOverheadGuard run_trace_overhead_guard(unsigned threads) {
  const std::size_t devices = std::max<std::size_t>(bench::scale_override(4'000) / 5, 200);
  const auto trace_path =
      (std::filesystem::temp_directory_path() / "wtr_bench_p1_guard_trace.json").string();
  std::cerr << "[bench] trace overhead guard: " << devices
            << " devices, recorder off vs on...\n";

  constexpr int kReps = 3;
  TraceOverheadGuard guard;
  std::string off_stream, on_stream;
  bool interrupted = false;

  auto arm = [&](const std::string& path, std::string& stream, std::uint64_t& events) {
    double best = 0.0;
    for (int rep = 0; rep < kReps && !interrupted; ++rep) {
      tracegen::MnoScenarioConfig config;
      config.seed = kPipelineSeed;
      config.total_devices = devices;
      config.threads = threads;
      config.build_coverage = false;
      config.telemetry.trace_path = path;
      GuardStream sink;
      const auto start = std::chrono::steady_clock::now();
      tracegen::MnoScenario scenario{config};
      scenario.run({&sink});
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      if (scenario.engine().interrupted()) {
        interrupted = true;
        return 0.0;
      }
      if (const auto* rec = scenario.engine().flight_recorder()) {
        events = rec->events_recorded();
      }
      if (rep == 0) {
        stream = std::move(sink.stream);
      }
      best = rep == 0 ? wall : std::min(best, wall);
    }
    return best;
  };

  std::uint64_t off_events = 0;
  guard.off_wall_s = arm("", off_stream, off_events);
  guard.on_wall_s = arm(trace_path, on_stream, guard.trace_events);
  std::filesystem::remove(trace_path);
  if (interrupted) return {};  // Ctrl-C mid-guard: nothing to assert

  if (off_stream != on_stream) {
    std::cerr << "[bench] FAIL: enabling the flight recorder changed the "
              << "record stream (" << off_stream.size() << " vs "
              << on_stream.size() << " bytes) — tracing must not perturb "
              << "the simulation\n";
    std::exit(1);
  }
  if (guard.trace_events == 0) {
    std::cerr << "[bench] FAIL: traced run recorded no flight-recorder events\n";
    std::exit(1);
  }

  double max_pct = 3.0;
  if (const char* env = std::getenv("WTR_TRACE_OVERHEAD_MAX_PCT");
      env != nullptr && *env != '\0') {
    max_pct = std::strtod(env, nullptr);
  }
  const double delta_s = guard.on_wall_s - guard.off_wall_s;
  guard.overhead_pct =
      guard.off_wall_s > 0.0 ? delta_s / guard.off_wall_s * 100.0 : 0.0;
  // Noise floor: at guard scale a few ms of scheduler jitter can exceed any
  // percentage bound; only a delta that is both relatively and absolutely
  // large indicates real recorder overhead.
  constexpr double kNoiseFloorS = 0.025;
  if (guard.overhead_pct > max_pct && delta_s > kNoiseFloorS) {
    std::cerr << "[bench] FAIL: flight-recorder overhead "
              << io::format_fixed(guard.overhead_pct, 2) << "% exceeds "
              << io::format_fixed(max_pct, 2) << "% (walls "
              << io::format_fixed(guard.off_wall_s, 3) << "s off vs "
              << io::format_fixed(guard.on_wall_s, 3) << "s on)\n";
    std::exit(1);
  }
  guard.ran = true;
  std::cerr << "[bench] trace overhead guard: streams bit-identical, "
            << guard.trace_events << " events, overhead "
            << io::format_fixed(guard.overhead_pct, 2) << "%\n";
  return guard;
}

/// Returns false when the run was interrupted by SIGINT/SIGTERM — the
/// partial manifest has been written and the micro benches must not run.
bool run_instrumented_pipeline(unsigned threads) {
  // With threads > 1, run a threads=1 reference first so the manifest can
  // report measured speedups. The sharded run's records and probe stats are
  // byte-identical to the reference's — only the wall times differ.
  double ref_engine_s = 0.0;
  double ref_wall_s = 0.0;
  if (threads > 1) {
    obs::RunObservation reference;
    const auto ref = run_pipeline_once(1, reference);
    if (ref.interrupted) return false;
    ref_engine_s = reference.timers().total_s("engine/run");
    ref_wall_s = ref.wall_s;
  }

  obs::RunObservation observation;
  const auto run = run_pipeline_once(threads, observation);
  if (run.interrupted) {
    // Export what the drained sinks and probe saw under a *.partial name so
    // an aborted bench leaves a marker instead of a fake baseline.
    auto manifest = bench::make_manifest("p1.partial", kPipelineSeed,
                                         bench::scale_override(4'000), observation);
    manifest.add_result("interrupted", std::string{"signal"});
    manifest.add_result("records_total", observation.probe().records_total());
    bench::add_thread_metadata(manifest, run.scenario->engine(), threads);
    bench::write_manifest(manifest);
    std::cerr << "[bench] interrupted: sinks drained, partial manifest written\n";
    return false;
  }
  const auto& scenario = *run.scenario;
  const std::int32_t config_days = tracegen::MnoScenarioConfig{}.days;

  const auto& probe = observation.probe();
  const double engine_s = observation.timers().total_s("engine/run");
  const double records_per_sec =
      engine_s > 0.0 ? static_cast<double>(probe.records_total()) / engine_s : 0.0;

  auto manifest = bench::make_manifest("p1", kPipelineSeed,
                                       bench::scale_override(4'000), observation);
  manifest.add_result("devices", static_cast<std::uint64_t>(scenario.device_count()));
  manifest.add_result("days", static_cast<std::uint64_t>(config_days));
  manifest.add_result("records_total", probe.records_total());
  manifest.add_result("records_per_sec", records_per_sec);
  manifest.add_result("queue_depth_max", probe.queue_depth_max());
  manifest.add_result("attach_failure_rate", probe.attach_failure_rate());
  manifest.add_result("summaries", static_cast<std::uint64_t>(run.summaries));
  manifest.add_result("population", static_cast<std::uint64_t>(run.population));
  bench::add_thread_metadata(manifest, run.scenario->engine(), threads);
  const auto guard = run_checkpoint_guard(threads);
  if (guard.ran) {
    manifest.add_result("checkpoints_written", guard.checkpoints_written);
    manifest.add_result("checkpoint_wall_s", guard.checkpoint_wall_s);
    manifest.add_result("checkpoint_guard", std::string{"ok"});
  }
  const auto trace_guard = run_trace_format_guard();
  if (trace_guard.ran) {
    manifest.add_result("trace_bytes_csv", trace_guard.csv_bytes);
    manifest.add_result("trace_bytes_binary", trace_guard.binary_bytes);
    manifest.add_result("replay_wall_s_csv", trace_guard.csv_wall_s);
    manifest.add_result("replay_wall_s_binary", trace_guard.binary_wall_s);
    manifest.add_result("replay_speedup",
                        trace_guard.binary_wall_s > 0.0
                            ? trace_guard.csv_wall_s / trace_guard.binary_wall_s
                            : 0.0);
    manifest.add_result("trace_format_guard", std::string{"ok"});
  }
  const auto overhead_guard = run_trace_overhead_guard(threads);
  if (overhead_guard.ran) {
    manifest.add_result("trace_overhead_pct", overhead_guard.overhead_pct);
    manifest.add_result("trace_events", overhead_guard.trace_events);
    manifest.add_result("trace_guard", std::string{"ok"});
  }
  if (threads > 1) {
    manifest.add_result("engine_speedup",
                        engine_s > 0.0 ? ref_engine_s / engine_s : 0.0);
    manifest.add_result("end_to_end_speedup",
                        run.wall_s > 0.0 ? ref_wall_s / run.wall_s : 0.0);
    std::cerr << "[bench] speedup vs threads=1: engine "
              << io::format_fixed(engine_s > 0.0 ? ref_engine_s / engine_s : 0.0, 2)
              << "x, end-to-end "
              << io::format_fixed(run.wall_s > 0.0 ? ref_wall_s / run.wall_s : 0.0, 2)
              << "x\n";
  }
  bench::write_manifest(manifest);

  io::Table table{{"pipeline phase", "wall_s", "spans"}};
  for (const auto& phase : observation.timers().phases()) {
    table.add_row({std::string(static_cast<std::size_t>(phase.depth) * 2, ' ') +
                       phase.path,
                   io::format_fixed(phase.wall_s, 3), io::format_count(phase.count)});
  }
  std::cout << io::figure_banner("P1", "Instrumented pipeline phases")
            << table.render() << "records/sec (engine phase): "
            << io::format_fixed(records_per_sec, 0) << "\n\n";
  return true;
}

// --- Layer 2: kernel micro-benchmarks --------------------------------------

struct Fixture {
  std::unique_ptr<tracegen::MnoScenario> scenario;
  records::DevicesCatalog catalog;
  std::vector<core::DeviceSummary> summaries;

  static const Fixture& get() {
    static const Fixture fixture = [] {
      tracegen::MnoScenarioConfig config;
      config.seed = 101;
      config.total_devices = 4'000;
      auto scenario = std::make_unique<tracegen::MnoScenario>(config);
      core::CatalogAccumulator accumulator{{scenario->observer_plmn(),
                                            scenario->family_plmns()}};
      scenario->run({&accumulator});
      auto catalog = accumulator.finalize();
      auto summaries = core::summarize(catalog);
      return Fixture{std::move(scenario), std::move(catalog), std::move(summaries)};
    }();
    return fixture;
  }
};

void BM_Summarize(benchmark::State& state) {
  const auto& fixture = Fixture::get();
  for (auto _ : state) {
    auto summaries = core::summarize(fixture.catalog);
    benchmark::DoNotOptimize(summaries);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fixture.catalog.size()));
}
BENCHMARK(BM_Summarize)->Unit(benchmark::kMillisecond);

void BM_RoamingLabeler(benchmark::State& state) {
  const auto& fixture = Fixture::get();
  const core::RoamingLabeler labeler{fixture.scenario->observer_plmn(),
                                     fixture.scenario->mvno_plmns()};
  for (auto _ : state) {
    std::size_t inbound = 0;
    for (const auto& summary : fixture.summaries) {
      if (labeler.label(summary.sim_plmn, summary.visited_plmns) ==
          core::kInboundRoamerLabel) {
        ++inbound;
      }
    }
    benchmark::DoNotOptimize(inbound);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fixture.summaries.size()));
}
BENCHMARK(BM_RoamingLabeler)->Unit(benchmark::kMicrosecond);

void BM_Classifier(benchmark::State& state) {
  const auto& fixture = Fixture::get();
  const core::DeviceClassifier classifier{fixture.scenario->tac_catalog()};
  for (auto _ : state) {
    auto result = classifier.classify(fixture.summaries);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fixture.summaries.size()));
}
BENCHMARK(BM_Classifier)->Unit(benchmark::kMillisecond);

void BM_ClassifierNoPropagation(benchmark::State& state) {
  const auto& fixture = Fixture::get();
  core::ClassifierConfig config;
  config.propagate_device_properties = false;
  const core::DeviceClassifier classifier{fixture.scenario->tac_catalog(), config};
  for (auto _ : state) {
    auto result = classifier.classify(fixture.summaries);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ClassifierNoPropagation)->Unit(benchmark::kMillisecond);

void BM_FullCensus(benchmark::State& state) {
  const auto& fixture = Fixture::get();
  for (auto _ : state) {
    auto population =
        core::run_census(fixture.catalog, fixture.scenario->observer_plmn(),
                         fixture.scenario->mvno_plmns(), fixture.scenario->tac_catalog());
    benchmark::DoNotOptimize(population);
  }
}
BENCHMARK(BM_FullCensus)->Unit(benchmark::kMillisecond);

void BM_GyrationAccumulator(benchmark::State& state) {
  stats::Rng rng{1};
  std::vector<cellnet::GeoPoint> points;
  std::vector<double> weights;
  const cellnet::GeoPoint base{51.5, -0.1};
  for (int i = 0; i < 1'000; ++i) {
    points.push_back(cellnet::offset_m(base, rng.uniform(-5e3, 5e3), rng.uniform(-5e3, 5e3)));
    weights.push_back(rng.uniform(1.0, 600.0));
  }
  for (auto _ : state) {
    core::GyrationAccumulator acc;
    for (std::size_t i = 0; i < points.size(); ++i) acc.add(points[i], weights[i]);
    benchmark::DoNotOptimize(acc.gyration_m());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1'000);
}
BENCHMARK(BM_GyrationAccumulator)->Unit(benchmark::kMicrosecond);

void BM_EcdfQuantiles(benchmark::State& state) {
  stats::Rng rng{2};
  stats::Ecdf ecdf;
  for (int i = 0; i < 100'000; ++i) ecdf.add(stats::sample_lognormal(rng, 3.0, 1.5));
  for (auto _ : state) {
    double total = 0.0;
    for (double q = 0.01; q < 1.0; q += 0.01) total += ecdf.quantile(q);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_EcdfQuantiles)->Unit(benchmark::kMicrosecond);

void BM_SimulationThroughput(benchmark::State& state) {
  // Wall-clock cost of simulating one device-day at MNO-population mix.
  for (auto _ : state) {
    tracegen::MnoScenarioConfig config;
    config.seed = 77;
    config.total_devices = 500;
    config.build_coverage = false;
    tracegen::MnoScenario scenario{config};
    core::CatalogAccumulator accumulator{{scenario.observer_plmn(),
                                          scenario.family_plmns()}};
    scenario.run({&accumulator});
    benchmark::DoNotOptimize(accumulator.accepted_records());
  }
}
BENCHMARK(BM_SimulationThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = wtr::bench::threads_from_args(argc, argv);
  bool manifest_only = false;
  // Strip our flag before google-benchmark sees the argument vector.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--manifest-only") == 0) {
      manifest_only = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  // Ctrl-C lands as a graceful engine stop (drained sinks + a *.partial
  // manifest) instead of killing the process with buffered state lost.
  wtr::ckpt::install_shutdown_handlers();

  if (!run_instrumented_pipeline(threads)) return 130;
  if (manifest_only) return 0;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
