// P1 — google-benchmark timings for the analysis pipeline kernels an
// operator would run daily: catalog summarization, roaming labeling, the
// multi-step classifier, and the mobility-metric accumulator.

#include <benchmark/benchmark.h>

#include "core/activity_metrics.hpp"
#include "core/census.hpp"
#include "core/classifier_validation.hpp"
#include "stats/distributions.hpp"
#include "tracegen/mno_scenario.hpp"

namespace {

using namespace wtr;

struct Fixture {
  std::unique_ptr<tracegen::MnoScenario> scenario;
  records::DevicesCatalog catalog;
  std::vector<core::DeviceSummary> summaries;

  static const Fixture& get() {
    static const Fixture fixture = [] {
      tracegen::MnoScenarioConfig config;
      config.seed = 101;
      config.total_devices = 4'000;
      auto scenario = std::make_unique<tracegen::MnoScenario>(config);
      core::CatalogAccumulator accumulator{{scenario->observer_plmn(),
                                            scenario->family_plmns()}};
      scenario->run({&accumulator});
      auto catalog = accumulator.finalize();
      auto summaries = core::summarize(catalog);
      return Fixture{std::move(scenario), std::move(catalog), std::move(summaries)};
    }();
    return fixture;
  }
};

void BM_Summarize(benchmark::State& state) {
  const auto& fixture = Fixture::get();
  for (auto _ : state) {
    auto summaries = core::summarize(fixture.catalog);
    benchmark::DoNotOptimize(summaries);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fixture.catalog.size()));
}
BENCHMARK(BM_Summarize)->Unit(benchmark::kMillisecond);

void BM_RoamingLabeler(benchmark::State& state) {
  const auto& fixture = Fixture::get();
  const core::RoamingLabeler labeler{fixture.scenario->observer_plmn(),
                                     fixture.scenario->mvno_plmns()};
  for (auto _ : state) {
    std::size_t inbound = 0;
    for (const auto& summary : fixture.summaries) {
      if (labeler.label(summary.sim_plmn, summary.visited_plmns) ==
          core::kInboundRoamerLabel) {
        ++inbound;
      }
    }
    benchmark::DoNotOptimize(inbound);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fixture.summaries.size()));
}
BENCHMARK(BM_RoamingLabeler)->Unit(benchmark::kMicrosecond);

void BM_Classifier(benchmark::State& state) {
  const auto& fixture = Fixture::get();
  const core::DeviceClassifier classifier{fixture.scenario->tac_catalog()};
  for (auto _ : state) {
    auto result = classifier.classify(fixture.summaries);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fixture.summaries.size()));
}
BENCHMARK(BM_Classifier)->Unit(benchmark::kMillisecond);

void BM_ClassifierNoPropagation(benchmark::State& state) {
  const auto& fixture = Fixture::get();
  core::ClassifierConfig config;
  config.propagate_device_properties = false;
  const core::DeviceClassifier classifier{fixture.scenario->tac_catalog(), config};
  for (auto _ : state) {
    auto result = classifier.classify(fixture.summaries);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ClassifierNoPropagation)->Unit(benchmark::kMillisecond);

void BM_FullCensus(benchmark::State& state) {
  const auto& fixture = Fixture::get();
  for (auto _ : state) {
    auto population =
        core::run_census(fixture.catalog, fixture.scenario->observer_plmn(),
                         fixture.scenario->mvno_plmns(), fixture.scenario->tac_catalog());
    benchmark::DoNotOptimize(population);
  }
}
BENCHMARK(BM_FullCensus)->Unit(benchmark::kMillisecond);

void BM_GyrationAccumulator(benchmark::State& state) {
  stats::Rng rng{1};
  std::vector<cellnet::GeoPoint> points;
  std::vector<double> weights;
  const cellnet::GeoPoint base{51.5, -0.1};
  for (int i = 0; i < 1'000; ++i) {
    points.push_back(cellnet::offset_m(base, rng.uniform(-5e3, 5e3), rng.uniform(-5e3, 5e3)));
    weights.push_back(rng.uniform(1.0, 600.0));
  }
  for (auto _ : state) {
    core::GyrationAccumulator acc;
    for (std::size_t i = 0; i < points.size(); ++i) acc.add(points[i], weights[i]);
    benchmark::DoNotOptimize(acc.gyration_m());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1'000);
}
BENCHMARK(BM_GyrationAccumulator)->Unit(benchmark::kMicrosecond);

void BM_EcdfQuantiles(benchmark::State& state) {
  stats::Rng rng{2};
  stats::Ecdf ecdf;
  for (int i = 0; i < 100'000; ++i) ecdf.add(stats::sample_lognormal(rng, 3.0, 1.5));
  for (auto _ : state) {
    double total = 0.0;
    for (double q = 0.01; q < 1.0; q += 0.01) total += ecdf.quantile(q);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_EcdfQuantiles)->Unit(benchmark::kMicrosecond);

void BM_SimulationThroughput(benchmark::State& state) {
  // Wall-clock cost of simulating one device-day at MNO-population mix.
  for (auto _ : state) {
    tracegen::MnoScenarioConfig config;
    config.seed = 77;
    config.total_devices = 500;
    config.build_coverage = false;
    tracegen::MnoScenario scenario{config};
    core::CatalogAccumulator accumulator{{scenario.observer_plmn(),
                                          scenario.family_plmns()}};
    scenario.run({&accumulator});
    benchmark::DoNotOptimize(accumulator.accepted_records());
  }
}
BENCHMARK(BM_SimulationThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
