// S2 — fault-injection sweep: the MNO scenario run twice, clean and under a
// FaultSchedule (operator outage, signaling storm, degraded hub path,
// misprovisioning ramp) with the 3GPP attach backoff enabled. Checks that
// the headline population shares survive the injected faults (within 2 pp —
// they are structural, not outcome-driven), that every outage recovers in
// finite time once its window closes, and that dirty replayed CSV degrades
// gracefully (skip-and-count) rather than aborting or misparsing.

#include <sstream>

#include "bench_common.hpp"
#include "core/trace_replay.hpp"
#include "faults/resilience_report.hpp"
#include "io/csv.hpp"

namespace {

using namespace wtr;

struct SweepRun {
  double smart = 0.0;
  double m2m = 0.0;
  std::uint64_t devices = 0;
};

SweepRun census_shares(const core::ClassifiedPopulation& population,
                       std::uint64_t devices) {
  SweepRun run;
  run.smart = population.classification.share_of(core::ClassLabel::kSmart);
  run.m2m = population.classification.share_of(core::ClassLabel::kM2M);
  run.devices = devices;
  return run;
}

/// Deterministically corrupted signaling CSV: every 5th row is damaged in a
/// rotating pattern (wrong arity, unterminated quote, trailing garbage after
/// a closing quote, unparsable numeric).
std::string corrupted_signaling_csv(std::size_t rows) {
  std::ostringstream out;
  io::CsvWriter writer{out};
  writer.write_row(signaling::csv_header());
  for (std::size_t i = 0; i < rows; ++i) {
    if (i % 5 == 4) {
      switch ((i / 5) % 4) {
        case 0: out << "not,a,valid,row\n"; break;
        case 1: out << "\"unterminated,quote\n"; break;
        case 2: out << "\"1\"x,2,214-07,234-01,Authentication,OK,4G,0,35000000\n"; break;
        case 3: out << "one,1e9x,214-07,234-01,Authentication,OK,4G,0,35000000\n"; break;
      }
      continue;
    }
    signaling::SignalingTransaction txn;
    txn.device = 0x1000 + i;
    txn.time = static_cast<stats::SimTime>(60 * i);
    txn.sim_plmn = cellnet::Plmn{204, 4, 2};
    txn.visited_plmn = cellnet::Plmn{234, 1, 2};
    txn.procedure = signaling::Procedure::kUpdateLocation;
    txn.result = signaling::ResultCode::kOk;
    txn.rat = cellnet::Rat::kTwoG;
    writer.write_row(signaling::to_csv_fields(txn));
  }
  return out.str();
}

class NullSink final : public sim::RecordSink {};

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = bench::threads_from_args(argc, argv);
  std::cout << io::figure_banner("S2", "Fault-injection sweep and recovery");

  const std::size_t devices = bench::scale_override(8'000);
  constexpr std::uint64_t kSeed = 2019;
  constexpr stats::SimTime kHour = 3600;

  // One observation covers the clean and faulted runs; the probe trajectory
  // then shows the fault windows as queue-depth/failure humps in the second
  // half of the samples.
  obs::RunObservation observation;

  // --- Clean baseline (also supplies the deterministic operator/hub ids the
  // schedule targets; identically-configured worlds build identically).
  tracegen::MnoScenarioConfig config;
  config.seed = kSeed;
  config.total_devices = devices;
  config.threads = threads;
  config.build_coverage = false;  // shares + resilience need no dwell grid

  faults::FaultSchedule schedule;
  SweepRun clean;
  {
    config.obs = observation.view();
    tracegen::MnoScenario scenario{config};
    std::cerr << "[bench] clean run: " << scenario.device_count() << " devices, "
              << config.days << " days...\n";
    core::CatalogAccumulator accumulator{{scenario.observer_plmn(),
                                          scenario.family_plmns()}};
    scenario.run({&accumulator});
    const auto catalog = accumulator.finalize();
    const auto population = core::run_census(catalog, scenario.observer_plmn(),
                                             scenario.mvno_plmns(),
                                             scenario.tac_catalog());
    clean = census_shares(population, scenario.device_count());

    const auto& wk = scenario.world().well_known();
    // Hard outage of the observed UK network: day 8, 08:00–14:00.
    schedule.add_outage(wk.uk_mno, stats::day_start(8) + 8 * kHour,
                        stats::day_start(8) + 14 * kHour, 1.0);
    // Core-overload storm on the same network: day 12, 10:00–16:00.
    schedule.add_storm(wk.uk_mno, stats::day_start(12) + 10 * kHour,
                       stats::day_start(12) + 16 * kHour, 0.35);
    // Degraded M2M-hub interconnect: days 5–7 (hits hub-routed roamers only).
    schedule.add_degraded_path(wk.m2m_hub, stats::day_start(5), stats::day_start(7),
                               0.25);
    // Provisioning decay ramping over the inbound smart-meter fleet,
    // days 3–10, peaking at 10% rejects.
    schedule.add_misprovisioning_ramp(tracegen::kFaultDomainInboundMeters,
                                      stats::day_start(3), stats::day_start(10),
                                      0.10);
  }

  // --- Faulted run: same seed and scale, schedule installed, mechanistic
  // 3GPP backoff replacing the legacy retry-rate boost.
  config.faults = &schedule;
  config.backoff.enabled = true;
  tracegen::MnoScenario scenario{config};
  std::cerr << "[bench] faulted run: " << schedule.size() << " episodes...\n";
  core::CatalogAccumulator accumulator{{scenario.observer_plmn(),
                                        scenario.family_plmns()}};
  faults::ResilienceReport report{scenario.world(), schedule, &observation.metrics()};
  scenario.run({&accumulator, &report});
  const auto catalog = accumulator.finalize();
  const auto population = core::run_census(catalog, scenario.observer_plmn(),
                                           scenario.mvno_plmns(),
                                           scenario.tac_catalog());
  const auto faulted = census_shares(population, scenario.device_count());

  // --- Shares must be fault-invariant (within 2 pp): classification reads
  // device identity and footprint, not success rates.
  const double d_smart = std::abs(faulted.smart - clean.smart);
  const double d_m2m = std::abs(faulted.m2m - clean.m2m);
  io::Table shares{{"share", "clean", "faulted", "|delta|", "within 2 pp"}};
  shares.add_row({"smart", io::format_percent(clean.smart),
                  io::format_percent(faulted.smart), io::format_percent(d_smart),
                  d_smart <= 0.02 ? "yes" : "NO"});
  shares.add_row({"m2m", io::format_percent(clean.m2m),
                  io::format_percent(faulted.m2m), io::format_percent(d_m2m),
                  d_m2m <= 0.02 ? "yes" : "NO"});
  std::cout << shares.render();

  const auto& summary = report.summary();
  std::cout << "\nfaulted run: " << io::format_count(summary.procedures)
            << " procedures, " << io::format_count(summary.failures) << " failures ("
            << io::format_percent(summary.failure_share()) << ")\n";

  // --- Failure anatomy: by code, by operator, by day.
  io::Table codes{{"result code", "count"}};
  for (int i = 0; i < signaling::kResultCodeCount; ++i) {
    const auto count = summary.by_code[static_cast<std::size_t>(i)];
    if (count == 0) continue;
    codes.add_row({std::string{signaling::result_code_name(
                       static_cast<signaling::ResultCode>(i))},
                   io::format_count(count)});
  }
  std::cout << '\n' << codes.render();

  io::Table by_op{{"visited operator", "failures"}};
  std::vector<std::pair<topology::OperatorId, std::uint64_t>> ops{
      summary.failures_by_operator.begin(), summary.failures_by_operator.end()};
  std::sort(ops.begin(), ops.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (std::size_t i = 0; i < ops.size() && i < 5; ++i) {
    by_op.add_row({scenario.world().operators().get(ops[i].first).name,
                   io::format_count(ops[i].second)});
  }
  std::cout << '\n' << by_op.render();

  io::Table by_day{{"day", "failures"}};
  for (const auto& [day, count] : summary.failures_by_day) {
    by_day.add_row({std::to_string(day), io::format_count(count)});
  }
  std::cout << '\n' << by_day.render()
            << "(Expect humps on days 5-7 (hub), a ramp through day 9, and"
               " spikes on days 8 and 12.)\n";

  // --- Recovery: finite time-to-first-registration after each outage.
  bool all_recovered = true;
  io::Table recovery{{"outage episode", "window ends", "recovered after"}};
  for (const auto& rec : summary.recoveries) {
    const auto seconds = rec.recovery_seconds();
    if (!seconds) all_recovered = false;
    recovery.add_row(
        {scenario.world().operators().get(rec.op).name,
         "day " + std::to_string(stats::day_of(rec.outage_end)),
         seconds ? io::format_fixed(*seconds, 0) + " s" : "NEVER (check!)"});
  }
  std::cout << '\n' << recovery.render();

  // --- Ingest degradation: a deterministically corrupted export replayed
  // through the same sink interface; malformed rows are skipped and counted.
  {
    std::istringstream dirty{corrupted_signaling_csv(500)};
    NullSink devnull;
    const auto stats =
        core::replay_signaling_csv(dirty, devnull, &observation.metrics());
    report.add_ingest({"signaling (corrupted export)", stats.rows, stats.delivered,
                       stats.bad_csv, stats.bad_fields});
    io::Table ingest{{"replayed stream", "rows", "delivered", "bad csv",
                      "bad fields"}};
    for (const auto& deg : report.summary().ingest) {
      ingest.add_row({deg.stream, io::format_count(deg.rows),
                      io::format_count(deg.delivered), io::format_count(deg.bad_csv),
                      io::format_count(deg.bad_fields)});
    }
    std::cout << '\n' << ingest.render();
  }

  const bool shares_ok = d_smart <= 0.02 && d_m2m <= 0.02;
  std::cout << '\n'
            << (shares_ok && all_recovered
                    ? "S2 PASS: shares fault-invariant, all outages recovered.\n"
                    : "S2 FAIL: see tables above.\n");

  auto manifest = bench::make_manifest("s2", kSeed, devices, observation);
  manifest.add_result("clean_smart_share", clean.smart);
  manifest.add_result("clean_m2m_share", clean.m2m);
  manifest.add_result("faulted_smart_share", faulted.smart);
  manifest.add_result("faulted_m2m_share", faulted.m2m);
  manifest.add_result("smart_share_delta", d_smart);
  manifest.add_result("m2m_share_delta", d_m2m);
  manifest.add_result("procedures", summary.procedures);
  manifest.add_result("failures", summary.failures);
  manifest.add_result("failure_share", summary.failure_share());
  manifest.add_result("fault_episodes", static_cast<std::uint64_t>(schedule.size()));
  manifest.add_result("outages_recovered",
                      static_cast<std::uint64_t>(
                          std::count_if(summary.recoveries.begin(),
                                        summary.recoveries.end(), [](const auto& rec) {
                                          return rec.first_success_after.has_value();
                                        })));
  manifest.add_result("all_recovered", std::string(all_recovered ? "yes" : "no"));
  manifest.add_result("verdict", std::string(shares_ok && all_recovered ? "PASS" : "FAIL"));
  bench::add_thread_metadata(manifest, scenario.engine(), threads);
  bench::write_manifest(manifest);
  return shares_ok && all_recovered ? 0 : 1;
}
