// T1 (§3.2 in-text table) — platform-wide shares: ES signaling dominance,
// roaming vs native composition, success/failure split, and the ES
// heavy-hitter concentration.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wtr;
  namespace paper = tracegen::paper;
  const unsigned threads = bench::threads_from_args(argc, argv);

  obs::RunObservation observation;
  const auto run = bench::run_platform_scenario(10'000, 2018, &observation, threads);
  const auto& stats = run.stats;

  std::cout << io::figure_banner("T1", "M2M platform shares (§3.2–3.3)");

  io::Table table{{"metric", "paper", "measured"}};
  bench::add_check(table, "ES share of all signaling", paper::kEsSignalingShare,
                   stats.es_signaling_share);
  bench::add_check(table, "ES signaling emitted while roaming",
                   paper::kEsRoamingSignalingShare, stats.es_roaming_signaling_share);
  bench::add_check(table, "ES devices never roaming", paper::kEsNonRoamingDeviceShare,
                   stats.es_nonroaming_device_share);
  bench::add_check(table, "ES devices with only failed 4G procedures",
                   paper::kFailedOnlyDeviceShare, stats.es_fraction_failed_only);
  bench::add_check(table, "devices with >=1 success (platform-wide)",
                   paper::kAnySuccessDeviceShare, stats.fraction_any_success);
  bench::add_check(table, "ES device share emitting 75% of ES signaling",
                   paper::kEsHeavyDeviceShare, stats.es_device_share_for_75pct_signaling);
  bench::add_check(table, "countries covered by that heavy set",
                   static_cast<double>(paper::kEsHeavyCountries),
                   static_cast<double>(stats.es_heavy_countries), /*percent=*/false);
  bench::add_check(table, "VMNOs covered by that heavy set",
                   static_cast<double>(paper::kEsHeavyVmnos),
                   static_cast<double>(stats.es_heavy_vmnos), /*percent=*/false);
  std::cout << table.render();

  io::Table scale{{"dataset property", "paper", "measured"}};
  scale.add_row({"days", std::to_string(paper::kPlatformDays), "11"});
  scale.add_row({"devices", io::format_count(static_cast<std::uint64_t>(
                                paper::kPlatformDevices)),
                 io::format_count(stats.total_devices)});
  scale.add_row({"transactions", io::format_count(static_cast<std::uint64_t>(
                                     paper::kPlatformTransactions)),
                 io::format_count(stats.total_records)});
  scale.add_row({"records/device", io::format_fixed(paper::kPlatformTransactions /
                                                    paper::kPlatformDevices),
                 io::format_fixed(stats.total_devices == 0
                                      ? 0.0
                                      : static_cast<double>(stats.total_records) /
                                            static_cast<double>(stats.total_devices))});
  std::cout << "\nScale (devices are intentionally scaled down; per-device"
               " intensities are the reproduction target):\n"
            << scale.render();

  auto manifest = bench::make_manifest("t1", run.scenario->config().seed,
                                       run.scenario->device_count(), observation);
  manifest.add_result("es_signaling_share", stats.es_signaling_share);
  manifest.add_result("es_roaming_signaling_share", stats.es_roaming_signaling_share);
  manifest.add_result("es_nonroaming_device_share", stats.es_nonroaming_device_share);
  manifest.add_result("es_fraction_failed_only", stats.es_fraction_failed_only);
  manifest.add_result("fraction_any_success", stats.fraction_any_success);
  manifest.add_result("total_records", stats.total_records);
  manifest.add_result("total_devices", stats.total_devices);
  bench::add_thread_metadata(manifest, run.scenario->engine(), threads);
  bench::write_manifest(manifest);
  return 0;
}
