// X2 (extension) — the 2G-sunset what-if from the paper's §6.1/§8
// discussion: MNOs are retiring 2G, yet 77% of M2M devices live on 2G only.
// The same population is simulated twice — against today's network and
// against a 3G/4G-only UK — and the stranded devices are counted per class.

#include "bench_common.hpp"

#include "core/classifier_validation.hpp"

namespace {

using namespace wtr;

struct Outcome {
  std::size_t built = 0;
  std::size_t observed = 0;  // devices with any catalog record
  std::map<std::string, std::size_t> observed_by_class;  // ground-truth class
};

Outcome run(bool sunset, std::size_t devices) {
  tracegen::MnoScenarioConfig config;
  config.seed = 2030;
  config.total_devices = devices;
  config.sunset_2g_in_uk = sunset;
  tracegen::MnoScenario scenario{config};
  std::cerr << "[bench] simulating " << scenario.device_count() << " devices, 2G "
            << (sunset ? "OFF" : "on") << "...\n";
  core::CatalogAccumulator accumulator{{scenario.observer_plmn(),
                                        scenario.family_plmns()}};
  scenario.run({&accumulator});
  const auto catalog = accumulator.finalize();
  const auto summaries = core::summarize(catalog);

  Outcome outcome;
  outcome.built = scenario.device_count();
  outcome.observed = summaries.size();
  const auto& truth = scenario.ground_truth();
  for (const auto& summary : summaries) {
    const auto it = truth.find(summary.device);
    if (it == truth.end()) continue;
    ++outcome.observed_by_class[std::string(
        devices::device_class_name(it->second.device_class))];
  }
  // Ground-truth class sizes for the denominator.
  return outcome;
}

}  // namespace

int main() {
  using namespace wtr;

  const std::size_t devices = bench::scale_override(10'000);
  const auto baseline = run(false, devices);
  const auto sunset = run(true, devices);

  std::cout << io::figure_banner("X2", "What-if: the UK retires 2G");

  io::Table table{{"population", "2G on", "2G off", "stranded"}};
  auto row = [&](const std::string& name, std::size_t before, std::size_t after) {
    const double stranded =
        before == 0 ? 0.0 : 1.0 - static_cast<double>(after) / static_cast<double>(before);
    table.add_row({name, io::format_count(before), io::format_count(after),
                   io::format_percent(stranded)});
  };
  row("all observed devices", baseline.observed, sunset.observed);
  for (const auto* device_class : {"smart", "feat", "m2m"}) {
    const auto before = baseline.observed_by_class.count(device_class)
                            ? baseline.observed_by_class.at(device_class)
                            : 0;
    const auto after = sunset.observed_by_class.count(device_class)
                           ? sunset.observed_by_class.at(device_class)
                           : 0;
    row(std::string("true-") + device_class, before, after);
  }
  std::cout << table.render()
            << "\nA device is 'stranded' when it no longer produces a single"
               " observable record: 2G-only hardware cannot attach anywhere"
               " in a 3G/4G-only country. The paper (§6.1): \"IoT devices"
               " such as smart meters are currently active mostly in 2G or"
               " 3G networks\" — this is the population a sunset strands.\n";
  return 0;
}
