// X3 (extension) — the §8 NB-IoT future: the Dutch meter fleet migrates to
// NB-IoT. The paper predicts "NB-IoT will enable visited MNOs to easily
// detect the inbound roaming IoT devices, a task that currently is
// challenging". We run today's world (0% NB-IoT) against a trial world
// (60% of roaming meters on NB-IoT) and measure how much of the M2M
// population becomes identifiable by RAT alone — before any APN or device
// database is consulted.

#include "bench_common.hpp"

#include "core/classifier_validation.hpp"

namespace {

using namespace wtr;

struct Outcome {
  core::ClassificationResult classification;
  core::ValidationReport report;
  std::size_t population = 0;
};

Outcome run(double nb_share, std::size_t devices) {
  tracegen::MnoScenarioConfig config;
  config.seed = 2040;
  config.total_devices = devices;
  config.nbiot_meter_share = nb_share;
  tracegen::MnoScenario scenario{config};
  std::cerr << "[bench] simulating " << scenario.device_count()
            << " devices, NB-IoT meter share " << nb_share << "...\n";
  core::CatalogAccumulator accumulator{{scenario.observer_plmn(),
                                        scenario.family_plmns()}};
  scenario.run({&accumulator});
  const auto catalog = accumulator.finalize();
  const auto population = core::run_census(catalog, scenario.observer_plmn(),
                                           scenario.mvno_plmns(), scenario.tac_catalog());
  Outcome outcome;
  outcome.classification = population.classification;
  outcome.report = core::validate_classification(
      population, tracegen::class_truth(scenario.ground_truth()));
  outcome.population = population.size();
  return outcome;
}

}  // namespace

int main() {
  using namespace wtr;

  const std::size_t devices = bench::scale_override(10'000);
  const auto today = run(0.0, devices);
  const auto trial = run(0.6, devices);

  std::cout << io::figure_banner("X3", "NB-IoT roaming trial: detection by RAT alone");

  io::Table table{{"metric", "today (no NB-IoT)", "trial (60% of NL meters)"}};
  auto pct = [](std::size_t num, std::size_t den) {
    return io::format_percent(den == 0 ? 0.0
                                       : static_cast<double>(num) /
                                             static_cast<double>(den));
  };
  table.add_row({"m2m identified by NB-IoT RAT rule (stage 0)",
                 pct(today.classification.m2m_by_nbiot_rat, today.population),
                 pct(trial.classification.m2m_by_nbiot_rat, trial.population)});
  table.add_row({"m2m needing APN keyword match (stage 2)",
                 pct(today.classification.m2m_by_apn, today.population),
                 pct(trial.classification.m2m_by_apn, trial.population)});
  table.add_row({"m2m needing property propagation (stage 3)",
                 pct(today.classification.m2m_by_propagation, today.population),
                 pct(trial.classification.m2m_by_propagation, trial.population)});
  table.add_row({"classifier lenient accuracy",
                 io::format_percent(today.report.lenient_accuracy),
                 io::format_percent(trial.report.lenient_accuracy)});
  table.add_row({"m2m recall", io::format_percent(today.report.m2m_recall),
                 io::format_percent(trial.report.m2m_recall)});
  std::cout << table.render()
            << "\nStage 0 needs no APN transparency, no IMSI-range disclosure"
               " and no GSMA database — exactly the paper's point about why"
               " operators await NB-IoT (§8).\n";
  return 0;
}
