// Figure 7 — ECDF of the number of active days: inbound roamers (left)
// vs native devices (right), m2m vs smartphones.

#include "bench_common.hpp"

#include "core/activity_metrics.hpp"

namespace {

void print_panel(const char* title, const wtr::stats::Ecdf& m2m,
                 const wtr::stats::Ecdf& smart) {
  std::cout << '\n' << title << '\n';
  wtr::io::Table table{{"days <=", "m2m", "smart"}};
  for (double d : {1.0, 2.0, 5.0, 9.0, 14.0, 18.0, 22.0}) {
    table.add_row({wtr::io::format_fixed(d, 0),
                   wtr::io::format_percent(m2m.fraction_at_most(d)),
                   wtr::io::format_percent(smart.fraction_at_most(d))});
  }
  std::cout << table.render();
}

}  // namespace

int main() {
  using namespace wtr;
  namespace paper = tracegen::paper;

  const auto run = bench::run_mno_scenario();
  const auto figure = core::active_days_figure(run.population);

  std::cout << io::figure_banner("Fig. 7", "Number of days devices are active");
  print_panel("Inbound roaming devices:", figure.inbound_m2m, figure.inbound_smart);
  print_panel("Native devices:", figure.native_m2m, figure.native_smart);

  io::Table checks{{"metric", "paper", "measured"}};
  bench::add_check(checks, "inbound m2m median active days",
                   paper::kInboundM2MMedianActiveDays, figure.inbound_m2m.median(),
                   /*percent=*/false);
  bench::add_check(checks, "inbound smart median active days",
                   paper::kInboundSmartMedianActiveDays, figure.inbound_smart.median(),
                   /*percent=*/false);
  bench::add_check(checks, "inbound m2m/smart median ratio", 4.5,
                   figure.inbound_smart.median() <= 0
                       ? 0.0
                       : figure.inbound_m2m.median() / figure.inbound_smart.median(),
                   /*percent=*/false);
  bench::add_check(checks, "native m2m/smart median ratio", 1.0,
                   figure.native_smart.median() <= 0
                       ? 0.0
                       : figure.native_m2m.median() / figure.native_smart.median(),
                   /*percent=*/false);
  std::cout << '\n' << checks.render();
  return 0;
}
