#pragma once

// Shared plumbing for the figure-reproduction harnesses: each bench binary
// simulates its scenario at a bench-friendly scale (override with
// WTR_BENCH_SCALE=<devices>), runs the corresponding analysis, and prints
// paper-vs-measured rows through wtr::io::Table. Harnesses that feed the
// perf trajectory also carry an obs::RunObservation and export a
// BENCH_<name>.json run manifest (see README "Run manifests").

#include <sys/resource.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/census.hpp"
#include "core/platform_analysis.hpp"
#include "io/table.hpp"
#include "obs/observability.hpp"
#include "tracegen/calibration.hpp"
#include "tracegen/m2m_platform_scenario.hpp"
#include "tracegen/mno_scenario.hpp"
#include "tracegen/smip_scenario.hpp"

namespace wtr::bench {

inline std::size_t scale_override(std::size_t fallback) {
  const char* env = std::getenv("WTR_BENCH_SCALE");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(env, &end, 10);
  if (errno != 0 || end == env || *end != '\0' || value <= 0) {
    // A typo like WTR_BENCH_SCALE=10k must not silently fall back — the
    // operator thinks they ran a 10k sweep and reads numbers from the
    // default scale. Warn loudly, then fall back.
    std::cerr << "[bench] invalid WTR_BENCH_SCALE=\"" << env
              << "\" (want a positive integer); using " << fallback << "\n";
    return fallback;
  }
  return static_cast<std::size_t>(value);
}

/// Engine thread count from WTR_BENCH_THREADS (same hardening as
/// scale_override). Output is byte-identical at any value — this only
/// trades wall time, so baselines stay comparable across thread counts.
inline unsigned threads_override(unsigned fallback) {
  const char* env = std::getenv("WTR_BENCH_THREADS");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(env, &end, 10);
  if (errno != 0 || end == env || *end != '\0' || value <= 0) {
    std::cerr << "[bench] invalid WTR_BENCH_THREADS=\"" << env
              << "\" (want a positive integer); using " << fallback << "\n";
    return fallback;
  }
  return static_cast<unsigned>(value);
}

/// Consume a `--threads=N` argument if present (removed from argv so the
/// remaining args can go to google-benchmark untouched). Precedence:
/// --threads=N beats WTR_BENCH_THREADS beats the default of 1.
inline unsigned threads_from_args(int& argc, char** argv) {
  unsigned threads = threads_override(1);
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      const std::string value = arg.substr(10);
      char* end = nullptr;
      errno = 0;
      const long parsed = std::strtol(value.c_str(), &end, 10);
      if (errno != 0 || end == value.c_str() || *end != '\0' || parsed <= 0) {
        std::cerr << "[bench] invalid " << arg
                  << " (want a positive integer); using " << threads << "\n";
      } else {
        threads = static_cast<unsigned>(parsed);
      }
      continue;  // swallow the argument
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return threads;
}

/// Peak resident set size of this process so far, in bytes (Linux reports
/// ru_maxrss in kilobytes). 0 when getrusage fails.
inline std::uint64_t peak_rss_bytes() {
  struct rusage usage{};
  if (::getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
}

/// Record the engine's parallel-execution metadata in a manifest. These
/// keys are informational (compare_manifest.py ignores them): thread count
/// never changes results, only wall time.
inline void add_thread_metadata(obs::RunManifest& manifest, const sim::Engine& engine,
                                unsigned threads_requested) {
  manifest.add_result("engine_threads", static_cast<std::uint64_t>(threads_requested));
  manifest.add_result("engine_shards", static_cast<std::uint64_t>(engine.shards_used()));
  manifest.add_result("engine_merge_wall_s", engine.merge_wall_s());
  const auto& shard_wakes = engine.shard_wakes();
  if (!shard_wakes.empty()) {
    std::string wakes;
    for (std::size_t s = 0; s < shard_wakes.size(); ++s) {
      if (s != 0) wakes += ',';
      wakes += std::to_string(shard_wakes[s]);
    }
    manifest.add_result("engine_shard_wakes", wakes);
  }
  // Flight-recorder shard-balance telemetry (only meaningful on traced
  // runs; compare_manifest.py ignores all trace_* keys).
  const auto& busy = engine.shard_busy_s();
  if (!busy.empty() && engine.window_wall_s() > 0.0) {
    double lo = busy.front(), hi = busy.front();
    for (const double b : busy) {
      lo = std::min(lo, b);
      hi = std::max(hi, b);
    }
    manifest.add_result("trace_shard_busy_frac_min", lo / engine.window_wall_s());
    manifest.add_result("trace_shard_busy_frac_max", hi / engine.window_wall_s());
    manifest.add_result("trace_merge_wait_skew_s", engine.merge_wait_skew_s());
    manifest.add_result("trace_queue_depth_hwm", engine.queue_depth_hwm());
  }
}

/// Paper-vs-measured row helper.
inline void add_check(io::Table& table, const std::string& metric, double paper,
                      double measured, bool percent = true) {
  table.add_row({metric, percent ? io::format_percent(paper) : io::format_fixed(paper),
                 percent ? io::format_percent(measured) : io::format_fixed(measured)});
}

struct MnoRun {
  std::unique_ptr<tracegen::MnoScenario> scenario;
  records::DevicesCatalog catalog;
  core::ClassifiedPopulation population;
};

/// `observation` (optional) instruments the whole run: scenario phases,
/// engine probe samples and the analysis passes all land in it, ready for
/// make_manifest() below.
inline MnoRun run_mno_scenario(std::size_t default_devices = 16'000,
                               std::uint64_t seed = 2019,
                               obs::RunObservation* observation = nullptr,
                               unsigned threads = 0) {
  tracegen::MnoScenarioConfig config;
  config.seed = seed;
  config.total_devices = scale_override(default_devices);
  config.threads = threads != 0 ? threads : threads_override(1);
  if (observation != nullptr) config.obs = observation->view();
  auto scenario = std::make_unique<tracegen::MnoScenario>(config);
  std::cerr << "[bench] simulating MNO scenario: " << scenario->device_count()
            << " devices, " << config.days << " days...\n";
  core::CatalogAccumulator accumulator{{scenario->observer_plmn(),
                                        scenario->family_plmns()}};
  scenario->run({&accumulator});
  auto catalog = accumulator.finalize();
  obs::ScopedTimer census_timer{observation != nullptr ? &observation->timers() : nullptr,
                                "analysis/census"};
  auto population = core::run_census(catalog, scenario->observer_plmn(),
                                     scenario->mvno_plmns(), scenario->tac_catalog());
  return MnoRun{std::move(scenario), std::move(catalog), std::move(population)};
}

struct PlatformRun {
  std::unique_ptr<tracegen::M2MPlatformScenario> scenario;
  core::PlatformStats stats;
};

inline PlatformRun run_platform_scenario(std::size_t default_devices = 10'000,
                                         std::uint64_t seed = 2018,
                                         obs::RunObservation* observation = nullptr,
                                         unsigned threads = 0) {
  tracegen::M2MPlatformConfig config;
  config.seed = seed;
  config.total_devices = scale_override(default_devices);
  config.threads = threads != 0 ? threads : threads_override(1);
  if (observation != nullptr) config.obs = observation->view();
  auto scenario = std::make_unique<tracegen::M2MPlatformScenario>(config);
  std::cerr << "[bench] simulating M2M platform scenario: " << scenario->device_count()
            << " devices, " << config.days << " days...\n";
  core::PlatformTraceAccumulator accumulator{{scenario->hmno_plmns()}};
  scenario->run({&accumulator});
  obs::ScopedTimer finalize_timer{
      observation != nullptr ? &observation->timers() : nullptr, "analysis/platform"};
  auto stats = accumulator.finalize();
  return PlatformRun{std::move(scenario), std::move(stats)};
}

/// Manifest seeded with run identity and all three observability sources
/// attached. Callers add_result() their headline numbers, then write().
inline obs::RunManifest make_manifest(const std::string& name, std::uint64_t seed,
                                      std::uint64_t scale,
                                      const obs::RunObservation& observation) {
  obs::RunManifest manifest{name};
  manifest.set_seed(seed);
  manifest.set_scale(scale);
  observation.fill(manifest);
  return manifest;
}

/// Write and announce a manifest (stderr keeps stdout tables clean). The
/// process's peak RSS is stamped here — write time is as late as any
/// harness measures, so the value covers the whole run. Ignored by
/// compare_manifest.py: memory ceilings vary with scale and machine.
inline void write_manifest(obs::RunManifest& manifest) {
  manifest.add_result("peak_rss_bytes", peak_rss_bytes());
  const auto path = manifest.write();
  if (!path.empty()) std::cerr << "[bench] wrote " << path << "\n";
}

}  // namespace wtr::bench
