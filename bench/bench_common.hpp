#pragma once

// Shared plumbing for the figure-reproduction harnesses: each bench binary
// simulates its scenario at a bench-friendly scale (override with
// WTR_BENCH_SCALE=<devices>), runs the corresponding analysis, and prints
// paper-vs-measured rows through wtr::io::Table.

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/census.hpp"
#include "core/platform_analysis.hpp"
#include "io/table.hpp"
#include "tracegen/calibration.hpp"
#include "tracegen/m2m_platform_scenario.hpp"
#include "tracegen/mno_scenario.hpp"
#include "tracegen/smip_scenario.hpp"

namespace wtr::bench {

inline std::size_t scale_override(std::size_t fallback) {
  if (const char* env = std::getenv("WTR_BENCH_SCALE")) {
    const long value = std::atol(env);
    if (value > 0) return static_cast<std::size_t>(value);
  }
  return fallback;
}

/// Paper-vs-measured row helper.
inline void add_check(io::Table& table, const std::string& metric, double paper,
                      double measured, bool percent = true) {
  table.add_row({metric, percent ? io::format_percent(paper) : io::format_fixed(paper),
                 percent ? io::format_percent(measured) : io::format_fixed(measured)});
}

struct MnoRun {
  std::unique_ptr<tracegen::MnoScenario> scenario;
  records::DevicesCatalog catalog;
  core::ClassifiedPopulation population;
};

inline MnoRun run_mno_scenario(std::size_t default_devices = 16'000,
                               std::uint64_t seed = 2019) {
  tracegen::MnoScenarioConfig config;
  config.seed = seed;
  config.total_devices = scale_override(default_devices);
  auto scenario = std::make_unique<tracegen::MnoScenario>(config);
  std::cerr << "[bench] simulating MNO scenario: " << scenario->device_count()
            << " devices, " << config.days << " days...\n";
  core::CatalogAccumulator accumulator{{scenario->observer_plmn(),
                                        scenario->family_plmns()}};
  scenario->run({&accumulator});
  auto catalog = accumulator.finalize();
  auto population = core::run_census(catalog, scenario->observer_plmn(),
                                     scenario->mvno_plmns(), scenario->tac_catalog());
  return MnoRun{std::move(scenario), std::move(catalog), std::move(population)};
}

struct PlatformRun {
  std::unique_ptr<tracegen::M2MPlatformScenario> scenario;
  core::PlatformStats stats;
};

inline PlatformRun run_platform_scenario(std::size_t default_devices = 10'000,
                                         std::uint64_t seed = 2018) {
  tracegen::M2MPlatformConfig config;
  config.seed = seed;
  config.total_devices = scale_override(default_devices);
  auto scenario = std::make_unique<tracegen::M2MPlatformScenario>(config);
  std::cerr << "[bench] simulating M2M platform scenario: " << scenario->device_count()
            << " devices, " << config.days << " days...\n";
  core::PlatformTraceAccumulator accumulator{{scenario->hmno_plmns()}};
  scenario->run({&accumulator});
  auto stats = accumulator.finalize();
  return PlatformRun{std::move(scenario), std::move(stats)};
}

}  // namespace wtr::bench
