#pragma once

// Shared plumbing for the figure-reproduction harnesses: each bench binary
// simulates its scenario at a bench-friendly scale (override with
// WTR_BENCH_SCALE=<devices>), runs the corresponding analysis, and prints
// paper-vs-measured rows through wtr::io::Table. Harnesses that feed the
// perf trajectory also carry an obs::RunObservation and export a
// BENCH_<name>.json run manifest (see README "Run manifests").

#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/census.hpp"
#include "core/platform_analysis.hpp"
#include "io/table.hpp"
#include "obs/observability.hpp"
#include "tracegen/calibration.hpp"
#include "tracegen/m2m_platform_scenario.hpp"
#include "tracegen/mno_scenario.hpp"
#include "tracegen/smip_scenario.hpp"

namespace wtr::bench {

inline std::size_t scale_override(std::size_t fallback) {
  const char* env = std::getenv("WTR_BENCH_SCALE");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(env, &end, 10);
  if (errno != 0 || end == env || *end != '\0' || value <= 0) {
    // A typo like WTR_BENCH_SCALE=10k must not silently fall back — the
    // operator thinks they ran a 10k sweep and reads numbers from the
    // default scale. Warn loudly, then fall back.
    std::cerr << "[bench] invalid WTR_BENCH_SCALE=\"" << env
              << "\" (want a positive integer); using " << fallback << "\n";
    return fallback;
  }
  return static_cast<std::size_t>(value);
}

/// Paper-vs-measured row helper.
inline void add_check(io::Table& table, const std::string& metric, double paper,
                      double measured, bool percent = true) {
  table.add_row({metric, percent ? io::format_percent(paper) : io::format_fixed(paper),
                 percent ? io::format_percent(measured) : io::format_fixed(measured)});
}

struct MnoRun {
  std::unique_ptr<tracegen::MnoScenario> scenario;
  records::DevicesCatalog catalog;
  core::ClassifiedPopulation population;
};

/// `observation` (optional) instruments the whole run: scenario phases,
/// engine probe samples and the analysis passes all land in it, ready for
/// make_manifest() below.
inline MnoRun run_mno_scenario(std::size_t default_devices = 16'000,
                               std::uint64_t seed = 2019,
                               obs::RunObservation* observation = nullptr) {
  tracegen::MnoScenarioConfig config;
  config.seed = seed;
  config.total_devices = scale_override(default_devices);
  if (observation != nullptr) config.obs = observation->view();
  auto scenario = std::make_unique<tracegen::MnoScenario>(config);
  std::cerr << "[bench] simulating MNO scenario: " << scenario->device_count()
            << " devices, " << config.days << " days...\n";
  core::CatalogAccumulator accumulator{{scenario->observer_plmn(),
                                        scenario->family_plmns()}};
  scenario->run({&accumulator});
  auto catalog = accumulator.finalize();
  obs::ScopedTimer census_timer{observation != nullptr ? &observation->timers() : nullptr,
                                "analysis/census"};
  auto population = core::run_census(catalog, scenario->observer_plmn(),
                                     scenario->mvno_plmns(), scenario->tac_catalog());
  return MnoRun{std::move(scenario), std::move(catalog), std::move(population)};
}

struct PlatformRun {
  std::unique_ptr<tracegen::M2MPlatformScenario> scenario;
  core::PlatformStats stats;
};

inline PlatformRun run_platform_scenario(std::size_t default_devices = 10'000,
                                         std::uint64_t seed = 2018,
                                         obs::RunObservation* observation = nullptr) {
  tracegen::M2MPlatformConfig config;
  config.seed = seed;
  config.total_devices = scale_override(default_devices);
  if (observation != nullptr) config.obs = observation->view();
  auto scenario = std::make_unique<tracegen::M2MPlatformScenario>(config);
  std::cerr << "[bench] simulating M2M platform scenario: " << scenario->device_count()
            << " devices, " << config.days << " days...\n";
  core::PlatformTraceAccumulator accumulator{{scenario->hmno_plmns()}};
  scenario->run({&accumulator});
  obs::ScopedTimer finalize_timer{
      observation != nullptr ? &observation->timers() : nullptr, "analysis/platform"};
  auto stats = accumulator.finalize();
  return PlatformRun{std::move(scenario), std::move(stats)};
}

/// Manifest seeded with run identity and all three observability sources
/// attached. Callers add_result() their headline numbers, then write().
inline obs::RunManifest make_manifest(const std::string& name, std::uint64_t seed,
                                      std::uint64_t scale,
                                      const obs::RunObservation& observation) {
  obs::RunManifest manifest{name};
  manifest.set_seed(seed);
  manifest.set_scale(scale);
  observation.fill(manifest);
  return manifest;
}

/// Write and announce a manifest (stderr keeps stdout tables clean).
inline void write_manifest(const obs::RunManifest& manifest) {
  const auto path = manifest.write();
  if (!path.empty()) std::cerr << "[bench] wrote " << path << "\n";
}

}  // namespace wtr::bench
