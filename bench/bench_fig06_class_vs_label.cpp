// Figure 6 — device class vs roaming label heatmaps, normalized per class
// (left panel) and per label (right panel).

#include "bench_common.hpp"

int main() {
  using namespace wtr;
  namespace paper = tracegen::paper;

  const auto run = bench::run_mno_scenario();
  const auto heatmap = core::class_vs_label(run.population);

  const std::array<const char*, 4> classes{"smart", "feat", "m2m", "m2m-maybe"};
  const std::array<const char*, 6> labels{"H:H", "V:H", "N:H", "I:H", "H:A", "V:A"};

  std::cout << io::figure_banner("Fig. 6-left", "Device class -vs- roaming label"
                                                " (row-normalized per class)");
  io::Table left{{"class \\ label", "H:H", "V:H", "N:H", "I:H", "H:A", "V:A"}};
  for (const auto* device_class : classes) {
    std::vector<std::string> cells{device_class};
    for (const auto* label : labels) {
      cells.push_back(io::format_percent(heatmap.row_share(device_class, label)));
    }
    left.add_row(std::move(cells));
  }
  std::cout << left.render();

  std::cout << io::figure_banner("Fig. 6-right", "Roaming label -vs- device class"
                                                 " (column-normalized per label)");
  io::Table right{{"label \\ class", "smart", "feat", "m2m", "m2m-maybe"}};
  for (const auto* label : labels) {
    std::vector<std::string> cells{label};
    for (const auto* device_class : classes) {
      cells.push_back(io::format_percent(heatmap.col_share(device_class, label)));
    }
    right.add_row(std::move(cells));
  }
  std::cout << right.render();

  io::Table checks{{"metric", "paper", "measured"}};
  bench::add_check(checks, "I:H devices that are m2m", paper::kInboundM2MShare,
                   heatmap.col_share("m2m", "I:H"));
  bench::add_check(checks, "I:H devices that are smart", paper::kInboundSmartShare,
                   heatmap.col_share("smart", "I:H"));
  bench::add_check(checks, "m2m devices inbound roaming", paper::kM2MInboundShare,
                   heatmap.row_share("m2m", "I:H"));
  bench::add_check(checks, "smart devices inbound roaming", paper::kSmartInboundShare,
                   heatmap.row_share("smart", "I:H"));
  bench::add_check(checks, "feat devices inbound roaming", paper::kFeatInboundShare,
                   heatmap.row_share("feat", "I:H"));
  std::cout << '\n' << checks.render();
  return 0;
}
