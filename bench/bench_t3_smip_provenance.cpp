// T3 (§4.4 in-text findings) — provenance of the SMIP-roaming fleet: all
// SIMs provisioned by a single Dutch operator; modules from exactly two
// M2M vendors (Gemalto, Telit); energy-company patterns in the APNs.

#include "bench_common.hpp"

#include "core/smip_analysis.hpp"
#include "core/vertical_analysis.hpp"
#include "devices/verticals.hpp"

int main() {
  using namespace wtr;

  tracegen::SmipScenarioConfig config;
  config.total_devices = bench::scale_override(8'000);
  tracegen::SmipScenario scenario{config};
  std::cerr << "[bench] simulating SMIP scenario: " << scenario.device_count()
            << " meters...\n";

  core::CatalogAccumulator accumulator{{scenario.observer_plmn(),
                                        {scenario.observer_plmn()}}};
  scenario.run({&accumulator});
  const auto catalog = accumulator.finalize();
  const auto summaries = core::summarize(catalog);
  const auto analysis =
      core::analyze_smip(summaries, scenario.native_meters(), scenario.roaming_meters(),
                         config.days, scenario.tac_catalog());

  std::cout << io::figure_banner("T3", "SMIP roaming provenance (§4.4)");

  io::Table homes{{"home operator of roaming meter SIMs", "devices"}};
  for (const auto& [plmn, count] : analysis.roaming_home_operators.sorted()) {
    homes.add_row({plmn, io::format_count(count)});
  }
  std::cout << homes.render()
            << "(paper: a single operator in the Netherlands — mnc004.mcc204)\n";

  io::Table vendors{{"module vendor", "devices", "share"}};
  for (const auto& [vendor, count] : analysis.roaming_vendors.sorted()) {
    vendors.add_row({vendor, io::format_count(count),
                     io::format_percent(analysis.roaming_vendors.share(vendor))});
  }
  std::cout << '\n' << vendors.render()
            << "(paper: exactly two manufacturers, Gemalto and Telit)\n";

  // Energy-company APN patterns among the roaming meters.
  stats::CategoryCounter companies;
  for (const auto& summary : summaries) {
    if (!scenario.roaming_meters().contains(summary.device)) continue;
    for (const auto& apn_string : summary.apns) {
      const auto apn = cellnet::Apn::parse(apn_string);
      for (const auto& company : devices::smip_energy_companies()) {
        if (!company.keyword.empty() && apn.contains_keyword(company.keyword)) {
          companies.add(std::string(company.keyword));
        }
      }
    }
  }
  io::Table apns{{"energy company keyword in APN", "APN sightings"}};
  for (const auto& [keyword, count] : companies.sorted()) {
    apns.add_row({keyword, io::format_count(count)});
  }
  std::cout << '\n' << apns.render()
            << "(paper: Elster, RWE, Centrica, General Electric, BGLOBAL)\n";

  // Dedicated-IMSI check for the native fleet (the GSMA IR.88-style
  // transparency the paper discusses): every native meter SIM falls in the
  // provisioned range.
  std::size_t native_seen = 0;
  for (const auto& summary : summaries) {
    if (scenario.native_meters().contains(summary.device)) ++native_seen;
  }
  io::Table native{{"native-fleet property", "value"}};
  native.add_row({"meters observed", io::format_count(native_seen)});
  native.add_row({"provisioning", "dedicated IMSI range 500,000,000+ (modeled)"});
  std::cout << '\n' << native.render();
  return 0;
}
