// Figure 2 — "Percentage of M2M devices per visited country", per HMNO.
// Regenerates the heatmap (HMNO × visited country, countries under 0.1%
// grouped into "Other") plus the per-HMNO headline shares of §3.2.

#include "bench_common.hpp"

int main() {
  using namespace wtr;
  namespace paper = tracegen::paper;

  const auto run = bench::run_platform_scenario();
  const auto& stats = run.stats;

  std::cout << io::figure_banner(
      "Fig. 2", "M2M platform footprint: devices per HMNO x visited country");

  // --- Headline shares (paper vs measured).
  io::Table shares{{"metric", "paper", "measured"}};
  double es_share = 0;
  double mx_share = 0;
  double ar_share = 0;
  double de_share = 0;
  for (const auto& hmno : stats.per_hmno) {
    const double share = hmno.device_share(stats.total_devices);
    if (hmno.home_iso == "ES") es_share = share;
    if (hmno.home_iso == "MX") mx_share = share;
    if (hmno.home_iso == "AR") ar_share = share;
    if (hmno.home_iso == "DE") de_share = share;
  }
  bench::add_check(shares, "ES device share", paper::kEsDeviceShare, es_share);
  bench::add_check(shares, "MX device share", paper::kMxDeviceShare, mx_share);
  bench::add_check(shares, "AR device share", paper::kArDeviceShare, ar_share);
  bench::add_check(shares, "DE device share", paper::kDeDeviceShare, de_share);
  std::cout << shares.render();

  // --- Footprint breadth.
  io::Table breadth{{"HMNO", "devices", "visited countries (paper)", "visited VMNOs (paper)",
                     "home-only devices"}};
  for (const auto& hmno : stats.per_hmno) {
    std::string countries = std::to_string(hmno.visited_countries);
    std::string networks = std::to_string(hmno.visited_networks);
    if (hmno.home_iso == "ES") {
      countries += " (77)";
      networks += " (127)";
    } else if (hmno.home_iso == "MX") {
      countries += " (7)";
      networks += " (10)";
    } else if (hmno.home_iso == "AR") {
      networks += " (6)";
    } else if (hmno.home_iso == "DE") {
      networks += " (18)";
    }
    breadth.add_row({hmno.home_iso, io::format_count(hmno.devices), countries, networks,
                     io::format_percent(hmno.devices == 0
                                            ? 0.0
                                            : 1.0 - static_cast<double>(hmno.roaming_devices) /
                                                        static_cast<double>(hmno.devices))});
  }
  std::cout << '\n' << breadth.render();

  // --- The heatmap itself: row-normalized shares, minor countries grouped.
  const auto grouped = stats.footprint.with_minor_cols_grouped(0.001, "Other");
  const auto cols = grouped.cols_by_total();
  io::Table heatmap{{"visited \\ HMNO", "ES", "MX", "AR", "DE"}};
  std::size_t shown = 0;
  for (const auto& country : cols) {
    if (shown++ >= 20) break;  // top rows, like the figure's y-axis
    heatmap.add_row({country, io::format_percent(grouped.col_share("ES", country)),
                     io::format_percent(grouped.col_share("MX", country)),
                     io::format_percent(grouped.col_share("AR", country)),
                     io::format_percent(grouped.col_share("DE", country))});
  }
  std::cout << "\nDevice share of each visited country within an HMNO's fleet"
               " (top rows):\n"
            << heatmap.render();
  return 0;
}
